"""Failure injection: the system under degraded hardware.

Not a paper experiment, but the robustness cases a production video
server must survive: a drive that turns slow mid-run, and a drive that
was slow from the start.
"""

import dataclasses


from repro import MB, SpiffiConfig
from repro.core.metrics import collect_metrics
from repro.core.system import SpiffiSystem


def build(terminals=36, seed=31):
    return SpiffiSystem(SpiffiConfig(
        nodes=2,
        disks_per_node=2,
        terminals=terminals,
        videos_per_disk=2,
        video_length_s=600.0,
        server_memory_bytes=256 * MB,
        start_spread_s=4.0,
        warmup_grace_s=8.0,
        measure_s=40.0,
        seed=seed,
    ))


def degrade(drive, factor):
    drive.params = dataclasses.replace(
        drive.params, transfer_rate_bytes=drive.params.transfer_rate_bytes / factor
    )


class TestDegradedDrive:
    def test_healthy_baseline(self):
        system = build()
        metrics = system.run()
        assert metrics.glitches == 0

    def test_mid_run_slowdown_causes_glitches(self):
        """One drive dropping to 1/6 transfer speed mid-run overloads
        it (striping sends every stream through every disk)."""
        system = build()
        config = system.config
        system.start()
        system.env.run(until=config.warmup_s)
        system.reset_stats()
        degrade(system.nodes[0].drives[0], factor=6.0)
        system.env.run(until=config.warmup_s + config.measure_s)
        metrics = collect_metrics(system, config.measure_s)
        assert metrics.glitches > 0
        # The slow drive saturates while the healthy ones keep headroom.
        utils = system.disk_utilizations()
        assert utils[0] == max(utils)
        assert utils[0] > 0.95

    def test_mild_slowdown_absorbed(self):
        """A 15% slowdown of one drive at moderate load is absorbed by
        the terminals' buffers: no glitches."""
        system = build(terminals=24)
        config = system.config
        degrade(system.nodes[0].drives[0], factor=1.15)
        metrics = system.run()
        assert metrics.glitches == 0

    def test_simulation_survives_extreme_degradation(self):
        """Even a drive 30x too slow must not deadlock the simulator —
        terminals glitch and re-prime forever, but time advances and
        the run terminates."""
        system = build(terminals=20)
        degrade(system.nodes[1].drives[1], factor=30.0)
        metrics = system.run()
        assert metrics.glitches > 0
        assert metrics.blocks_delivered > 0
