"""Integration tests: the paper's qualitative claims on small systems.

These are scaled-down (4-disk, short-video) versions of the evaluation
experiments; the benchmark suite runs the paper-scale versions.
"""

import pytest

from repro import LayoutSpec, MB, ReplacementSpec, SpiffiConfig, run_simulation
from repro.prefetch import PrefetchSpec
from repro.sched import SchedulerSpec


def config(**overrides):
    defaults = dict(
        nodes=2,
        disks_per_node=2,
        terminals=50,
        videos_per_disk=2,
        video_length_s=600.0,
        server_memory_bytes=256 * MB,
        stripe_bytes=512 * 1024,
        start_spread_s=5.0,
        warmup_grace_s=10.0,
        measure_s=45.0,
        seed=21,
    )
    defaults.update(overrides)
    return SpiffiConfig(**defaults)


class TestStriping:
    """§7.4: striping is necessary for disk utilization and capacity."""

    def test_striped_beats_nonstriped_under_zipf(self):
        # z = 1.5 concentrates ~61% of requests on the top video; its
        # single disk saturates without striping.
        striped = run_simulation(config(layout=LayoutSpec("striped"), terminals=44,
                                        zipf_skew=1.5))
        non = run_simulation(config(layout=LayoutSpec("nonstriped"), terminals=44,
                                    zipf_skew=1.5))
        assert striped.glitches == 0
        assert non.glitches > 0

    def test_nonstriped_leaves_disks_idle(self):
        non = run_simulation(config(layout=LayoutSpec("nonstriped"), terminals=24))
        striped = run_simulation(config(layout=LayoutSpec("striped"), terminals=24))
        # Hot disks + idle disks: utilization spread is much wider
        # without striping.
        spread_non = non.disk_utilization_max - non.disk_utilization_min
        spread_striped = striped.disk_utilization_max - striped.disk_utilization_min
        assert spread_non > spread_striped


class TestSchedulers:
    """§7.2: round-robin loses; elevator and real-time are close."""

    def test_round_robin_glitches_before_elevator(self):
        load = 56
        rr = run_simulation(config(scheduler=SchedulerSpec("round_robin"),
                                   terminals=load))
        elevator = run_simulation(config(scheduler=SchedulerSpec("elevator"),
                                         terminals=load))
        assert rr.glitches >= elevator.glitches

    def test_realtime_matches_elevator_at_512k(self):
        load = 50
        rt = run_simulation(config(
            scheduler=SchedulerSpec("realtime"),
            prefetch=PrefetchSpec("realtime", processes_per_disk=4, depth=2),
            terminals=load,
        ))
        elevator = run_simulation(config(terminals=load))
        assert rt.glitches == elevator.glitches == 0


class TestMemoryAlgorithms:
    """§7.3: love prefetch needs less memory than global LRU."""

    def test_love_wastes_fewer_prefetches_at_low_memory(self):
        low = 24 * MB
        lru = run_simulation(config(
            server_memory_bytes=low, replacement_policy=ReplacementSpec("global_lru"),
            prefetch=PrefetchSpec("standard", pool_share=0.5), terminals=40,
        ))
        love = run_simulation(config(
            server_memory_bytes=low, replacement_policy=ReplacementSpec("love_prefetch"),
            prefetch=PrefetchSpec("standard", pool_share=0.5), terminals=40,
        ))
        assert love.wasted_prefetches <= lru.wasted_prefetches
        assert love.glitches <= lru.glitches

    def test_delayed_prefetch_eliminates_waste(self):
        rt = dict(scheduler=SchedulerSpec("realtime"), terminals=40,
                  server_memory_bytes=48 * MB,
                  replacement_policy=ReplacementSpec("love_prefetch"))
        undelayed = run_simulation(config(
            prefetch=PrefetchSpec("realtime", processes_per_disk=4, depth=4),
            **rt,
        ))
        delayed = run_simulation(config(
            prefetch=PrefetchSpec("delayed", processes_per_disk=4, depth=4,
                                  max_advance_s=8.0),
            **rt,
        ))
        assert delayed.wasted_prefetches <= undelayed.wasted_prefetches


class TestAccessSkew:
    """§7.5: skewed access shares pages once memory allows it."""

    def test_skew_raises_rereference_rate(self):
        steep = run_simulation(config(access_model="zipf", zipf_skew=1.5,
                                      terminals=40))
        uniform = run_simulation(config(access_model="uniform", terminals=40))
        assert steep.rereference_rate > uniform.rereference_rate


class TestScaleup:
    """§7.6 shape: doubling disks (and memory, videos) roughly doubles
    the load carried at the same per-disk utilization."""

    def test_doubling_disks_carries_double_load(self):
        small = run_simulation(config(terminals=40))
        big = run_simulation(config(
            disks_per_node=4,
            server_memory_bytes=512 * MB,
            terminals=80,
        ))
        assert small.glitches == 0
        assert big.glitches == 0
        # Same per-disk load regime after doubling everything.
        assert big.disk_utilization_mean == pytest.approx(
            small.disk_utilization_mean, abs=0.25
        )


class TestPause:
    """§8.1: pausing does not hurt capacity."""

    def test_pause_no_extra_glitches(self):
        from repro.terminal import PauseModel

        base = config(terminals=50)
        paused = base.replace(
            pause_model=PauseModel(enabled=True, mean_pauses_per_video=2.0,
                                   mean_pause_duration_s=30.0)
        )
        assert run_simulation(paused).glitches <= run_simulation(base).glitches


class TestNetworkScaling:
    """Figure 18 shape: peak bandwidth ≈ terminals × video bit rate."""

    def test_per_terminal_bandwidth_near_bit_rate(self):
        metrics = run_simulation(config(terminals=40))
        per_terminal_bits = metrics.network_peak_bytes_per_s * 8 / 40
        assert 3e6 <= per_terminal_bits <= 9e6
