"""Tests for ArrivalSpec, the arrival-process registry, and config wiring."""

import pytest

from repro import SpiffiConfig
from repro.experiments.results import config_digest, config_to_dict
from repro.server.admission import AdmissionSpec
from repro.workload import (
    CLOSED,
    ArrivalSpec,
    DiurnalArrivals,
    FlashArrivals,
    PoissonArrivals,
    arrival_process_names,
    make_arrival_process,
    register_arrival_process,
)


class TestArrivalSpec:
    def test_default_is_closed(self):
        spec = ArrivalSpec()
        assert spec.process == CLOSED
        assert not spec.enabled
        assert spec.label() == "closed"

    def test_open_spec_enabled(self):
        spec = ArrivalSpec(process="poisson", rate_per_s=2.0)
        assert spec.enabled
        assert "poisson" in spec.label()
        assert "120/min" in spec.label()

    def test_open_requires_rate(self):
        with pytest.raises(ValueError):
            ArrivalSpec(process="poisson")
        with pytest.raises(ValueError):
            ArrivalSpec(process="poisson", rate_per_s=-1.0)

    def test_closed_rejects_rate(self):
        with pytest.raises(ValueError):
            ArrivalSpec(rate_per_s=1.0)

    def test_hotset_needs_both_knobs(self):
        with pytest.raises(ValueError):
            ArrivalSpec(process="poisson", rate_per_s=1.0, hotset_size=4)
        with pytest.raises(ValueError):
            ArrivalSpec(process="poisson", rate_per_s=1.0, hotset_rotation_s=60.0)
        # Both together are fine.
        ArrivalSpec(
            process="poisson", rate_per_s=1.0,
            hotset_size=4, hotset_rotation_s=60.0,
        )

    def test_parameter_validation(self):
        base = dict(process="poisson", rate_per_s=1.0)
        with pytest.raises(ValueError):
            ArrivalSpec(**base, mean_view_duration_s=-1.0)
        with pytest.raises(ValueError):
            ArrivalSpec(**base, mean_patience_s=-1.0)
        with pytest.raises(ValueError):
            ArrivalSpec(**base, queue_limit=-1)
        with pytest.raises(ValueError):
            ArrivalSpec(**base, diurnal_amplitude=1.5)
        with pytest.raises(ValueError):
            ArrivalSpec(**base, diurnal_period_s=0.0)
        with pytest.raises(ValueError):
            ArrivalSpec(**base, flash_multiplier=0.5)
        with pytest.raises(ValueError):
            ArrivalSpec(**base, startup_slo_s=0.0)

    def test_unknown_process_error_names_registry(self):
        with pytest.raises(ValueError) as err:
            ArrivalSpec(process="bursty")
        message = str(err.value)
        assert "bursty" in message
        assert CLOSED in message
        for name in arrival_process_names():
            assert name in message


class TestArrivalRegistry:
    def test_builtins(self):
        names = arrival_process_names()
        for builtin in ("poisson", "diurnal", "flash"):
            assert builtin in names
        assert CLOSED not in names

    def test_make_dispatches(self):
        spec = ArrivalSpec(process="poisson", rate_per_s=1.0)
        assert isinstance(make_arrival_process(spec), PoissonArrivals)

    def test_plugin_process(self, monkeypatch):
        import repro.workload.arrivals as arrivals_module

        monkeypatch.setattr(
            arrivals_module, "_REGISTRY", dict(arrivals_module._REGISTRY)
        )

        class DoubleArrivals(PoissonArrivals):
            @property
            def peak_rate(self):
                return 2.0 * self.spec.rate_per_s

            def rate_at(self, t):
                return 2.0 * self.spec.rate_per_s

        register_arrival_process("double", DoubleArrivals)
        spec = ArrivalSpec(process="double", rate_per_s=1.5)
        process = make_arrival_process(spec)
        assert process.peak_rate == pytest.approx(3.0)

    def test_cannot_register_closed(self):
        with pytest.raises(ValueError):
            register_arrival_process(CLOSED, PoissonArrivals)
        with pytest.raises(ValueError):
            register_arrival_process("", PoissonArrivals)


class TestRateProfiles:
    def test_poisson_constant(self):
        process = make_arrival_process(
            ArrivalSpec(process="poisson", rate_per_s=3.0)
        )
        assert process.peak_rate == 3.0
        assert process.rate_at(0.0) == process.rate_at(1234.5) == 3.0

    def test_diurnal_oscillates_around_mean(self):
        spec = ArrivalSpec(
            process="diurnal", rate_per_s=2.0,
            diurnal_period_s=100.0, diurnal_amplitude=0.5,
        )
        process = make_arrival_process(spec)
        assert isinstance(process, DiurnalArrivals)
        assert process.peak_rate == pytest.approx(3.0)
        assert process.rate_at(0.0) == pytest.approx(2.0)  # sin(0) = 0
        assert process.rate_at(25.0) == pytest.approx(3.0)  # quarter period
        assert process.rate_at(75.0) == pytest.approx(1.0)
        assert all(
            process.rate_at(t / 10.0) <= process.peak_rate + 1e-12
            for t in range(2000)
        )

    def test_flash_burst_window(self):
        spec = ArrivalSpec(
            process="flash", rate_per_s=1.0,
            flash_at_s=10.0, flash_duration_s=5.0, flash_multiplier=4.0,
        )
        process = make_arrival_process(spec)
        assert isinstance(process, FlashArrivals)
        assert process.rate_at(9.9) == 1.0
        assert process.rate_at(10.0) == 4.0
        assert process.rate_at(14.9) == 4.0
        assert process.rate_at(15.0) == 1.0
        assert process.peak_rate == 4.0


class TestConfigWiring:
    def test_workload_type_checked(self):
        with pytest.raises(TypeError):
            SpiffiConfig(workload="poisson")

    def test_legacy_admission_string_rejected(self):
        with pytest.raises(TypeError, match="AdmissionSpec"):
            SpiffiConfig(admission="fixed")

    def test_admission_type_checked(self):
        with pytest.raises(TypeError):
            SpiffiConfig(admission=42)

    def test_default_workload_omitted_from_canonical_dict(self):
        # Pre-workload configs must keep their digests (cache validity).
        closed = SpiffiConfig()
        assert "workload" not in config_to_dict(closed)
        explicit = SpiffiConfig(workload=ArrivalSpec())
        assert config_digest(explicit) == config_digest(closed)

    def test_open_workload_changes_digest(self):
        closed = SpiffiConfig()
        open_config = SpiffiConfig(
            workload=ArrivalSpec(process="poisson", rate_per_s=1.0)
        )
        assert "workload" in config_to_dict(open_config)
        assert config_digest(open_config) != config_digest(closed)
