"""Tests for the max-sustainable-rate search.

Plan-level behaviour runs against a stubbed simulator (an oracle with a
known capacity); the executor-determinism and cache tests run *real*
tiny simulations, since stubbing would bypass exactly what they verify.
"""

import dataclasses

import pytest

import repro.experiments.runner as runner_module
from repro import MB, SpiffiConfig
from repro.experiments.results import RunCache
from repro.experiments.runner import ProcessExecutor, Runner, SerialExecutor
from repro.workload import ArrivalSpec, SloPolicy, find_max_rate


@dataclasses.dataclass
class FakeMetrics:
    glitches: int
    startup_p99_s: float = 0.0
    rejection_rate: float = 0.0


class Oracle:
    """Pretends the true sustainable rate is `capacity` arrivals/min."""

    def __init__(self, capacity_per_min):
        self.capacity = capacity_per_min
        self.calls = []

    def __call__(self, config):
        rate_per_min = config.workload.rate_per_s * 60.0
        self.calls.append((round(rate_per_min), config.seed))
        over = rate_per_min > self.capacity + 1e-9
        return FakeMetrics(glitches=12 if over else 0)


@pytest.fixture()
def patch_runner(monkeypatch):
    def apply(oracle):
        monkeypatch.setattr(runner_module, "run", oracle)
        return oracle

    return apply


def base_config():
    return SpiffiConfig(terminals=1, measure_s=10.0)


def poisson_workload(rate_per_s: float) -> ArrivalSpec:
    return ArrivalSpec(
        process="poisson", rate_per_s=rate_per_s, mean_view_duration_s=15.0
    )


class TestRateSearchPlan:
    def test_finds_exact_boundary(self, patch_runner):
        patch_runner(Oracle(capacity_per_min=310))
        result = find_max_rate(
            base_config(), poisson_workload, hint=120, granularity=30
        )
        assert result.max_rate_per_min == 300
        assert result.max_rate_per_s == pytest.approx(5.0)

    def test_results_snap_to_granularity(self, patch_runner):
        patch_runner(Oracle(capacity_per_min=310))
        result = find_max_rate(
            base_config(), poisson_workload, hint=120, granularity=120
        )
        assert result.max_rate_per_min == 240
        assert result.max_rate_per_min % 120 == 0

    def test_hint_above_descends(self, patch_runner):
        patch_runner(Oracle(capacity_per_min=60))
        result = find_max_rate(
            base_config(), poisson_workload, hint=600, granularity=60
        )
        assert result.max_rate_per_min == 60

    def test_nothing_sustainable_reports_below_low(self, patch_runner):
        patch_runner(Oracle(capacity_per_min=0))
        result = find_max_rate(
            base_config(), poisson_workload, hint=60, granularity=60, low=60
        )
        assert result.max_rate_per_min == 0
        assert result.metrics_at_max() is None

    def test_no_duplicate_probes(self, patch_runner):
        oracle = patch_runner(Oracle(capacity_per_min=300))
        find_max_rate(base_config(), poisson_workload, hint=240, granularity=60)
        assert len(oracle.calls) == len(set(oracle.calls))

    def test_probes_recorded_with_verdicts(self, patch_runner):
        patch_runner(Oracle(capacity_per_min=120))
        result = find_max_rate(
            base_config(), poisson_workload, hint=120, granularity=60, high=240
        )
        assert result.runs == len(result.probes)
        by_rate = {probe.rate_per_min: probe for probe in result.probes}
        assert by_rate[120].sustainable
        assert not by_rate[180].sustainable
        assert result.metrics_at_max().glitches == 0

    def test_slo_bounds_checked(self, patch_runner):
        class SlowStartOracle(Oracle):
            def __call__(self, config):
                metrics = super().__call__(config)
                rate = config.workload.rate_per_s * 60.0
                return FakeMetrics(
                    glitches=0, startup_p99_s=20.0 if rate > 120 else 1.0
                )

        patch_runner(SlowStartOracle(capacity_per_min=10**9))
        result = find_max_rate(
            base_config(),
            poisson_workload,
            slo=SloPolicy(max_p99_startup_s=10.0),
            hint=120,
            granularity=60,
        )
        assert result.max_rate_per_min == 120

    def test_validation(self, patch_runner):
        patch_runner(Oracle(capacity_per_min=100))
        with pytest.raises(ValueError):
            find_max_rate(base_config(), poisson_workload, granularity=0)
        with pytest.raises(ValueError):
            find_max_rate(base_config(), poisson_workload, replications=0)
        with pytest.raises(ValueError):
            find_max_rate(base_config(), poisson_workload, low=600, high=60)
        with pytest.raises(ValueError):
            SloPolicy(max_p99_startup_s=0.0)
        with pytest.raises(ValueError):
            SloPolicy(max_rejection_rate=1.5)
        with pytest.raises(ValueError):
            SloPolicy(max_glitches=-1)


def tiny_real_config():
    """Small enough that a full rate search takes a few seconds."""
    return SpiffiConfig(
        nodes=2,
        disks_per_node=2,
        terminals=1,
        videos_per_disk=1,
        video_length_s=120.0,
        server_memory_bytes=64 * MB,
        zipf_skew=0.2,
        start_spread_s=2.0,
        warmup_grace_s=2.0,
        measure_s=6.0,
        seed=3,
    )


def tiny_workload(rate_per_s: float) -> ArrivalSpec:
    return ArrivalSpec(
        process="poisson", rate_per_s=rate_per_s, mean_view_duration_s=10.0
    )


def tiny_search(runner):
    return find_max_rate(
        tiny_real_config(),
        tiny_workload,
        slo=SloPolicy(max_p99_startup_s=5.0),
        hint=120,
        granularity=60,
        low=60,
        high=360,
        runner=runner,
    )


class TestExecutorDeterminism:
    def test_serial_and_process_pool_agree(self):
        serial = tiny_search(Runner(SerialExecutor()))
        with ProcessExecutor(jobs=4) as executor:
            parallel = tiny_search(Runner(executor))
        assert parallel.max_rate_per_min == serial.max_rate_per_min
        assert len(parallel.probes) == len(serial.probes)
        for a, b in zip(serial.probes, parallel.probes):
            assert a.rate_per_min == b.rate_per_min
            assert a.metrics.deterministic_dict() == b.metrics.deterministic_dict()

    def test_rerun_is_all_cache_hits(self, tmp_path):
        cache = RunCache(str(tmp_path / "cache"))
        seen = []
        runner = Runner(
            SerialExecutor(), cache=cache, progress=lambda o: seen.append(o.cached)
        )
        first = tiny_search(runner)
        assert seen and not any(seen)
        seen.clear()
        second = tiny_search(runner)
        assert seen and all(seen)
        assert second.max_rate_per_min == first.max_rate_per_min
        for a, b in zip(first.probes, second.probes):
            assert a.metrics == b.metrics
