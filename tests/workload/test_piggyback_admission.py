"""Piggybacking x admission interaction.

Sessions request their admission slot *before* joining a piggyback
launch batch, so a batch of piggybacked sessions holds one slot per
session: launching a batch can never burst past a fixed cap, and no
session is counted (or admitted) twice.  These tests run systems
without the warmup stats reset so every counter covers the whole run
and the invariants can be checked as exact totals.
"""

from repro import MB, SpiffiConfig, SpiffiSystem, run_simulation
from repro.server.admission import AdmissionSpec
from repro.workload import ArrivalSpec


def hot_config(**overrides):
    """Heavy arrivals on few titles: piggyback windows fill up."""
    defaults = dict(
        nodes=2,
        disks_per_node=2,
        terminals=1,
        videos_per_disk=1,  # 4 titles: concurrent same-title starts
        video_length_s=600.0,
        server_memory_bytes=256 * MB,
        piggyback_window_s=2.0,
        start_spread_s=4.0,
        warmup_grace_s=6.0,
        measure_s=30.0,
        seed=11,
        workload=ArrivalSpec(
            process="poisson",
            rate_per_s=1.0,
            mean_view_duration_s=20.0,
            queue_limit=16,
            mean_patience_s=8.0,
        ),
    )
    defaults.update(overrides)
    return SpiffiConfig(**defaults)


def run_whole(config, until=40.0):
    """Run without the warmup reset so counters are whole-run totals."""
    system = SpiffiSystem(config)
    system.start()
    system.env.run(until=until)
    return system


class _Silence:
    """Zero-rate profile: swapping it in stops further arrivals."""

    def rate_at(self, t):
        return 0.0


class TestNoDoubleCounting:
    def test_batched_sessions_each_counted_once(self):
        system = run_whole(hot_config())
        stats = system.workload.stats
        # Piggybacking actually engaged (same-title concurrent starts).
        assert system.piggyback.terminals_batched > 0
        # One admission grant per admitted session, even inside batches.
        assert system.admission.admitted == stats.admitted
        # Let open piggyback windows drain with arrivals silenced: every
        # admitted session must then own exactly one terminal.
        system.workload.process = _Silence()
        system.env.run(until=45.0)
        assert len(system.terminals) == system.workload.stats.admitted
        # Ledger closes: every offer is admitted, rejected, or queued.
        stats = system.workload.stats
        in_queue = system.admission.queue_length
        assert stats.offered == (
            stats.admitted + stats.balked + stats.reneged + in_queue
        )

    def test_piggyback_stats_consistent(self):
        system = run_whole(hot_config())
        pig = system.piggyback
        assert pig.terminals_joined == system.workload.stats.admitted
        assert pig.terminals_batched < pig.terminals_joined
        assert 0.0 < pig.sharing_fraction < 1.0


class TestAtomicBatchUnderCap:
    def test_batch_launch_never_exceeds_fixed_cap(self):
        cap = 6
        system = run_whole(
            hot_config(admission=AdmissionSpec("fixed", max_streams=cap))
        )
        stats = system.workload.stats
        # The load genuinely exceeded the cap at some point.
        assert system.admission.queued > 0
        # Slots are held per session even through batch launches.
        assert system.admission.active <= cap
        live = stats.admitted - stats.completed - stats.abandoned
        assert system.admission.active == live
        assert system.admission.admitted == stats.admitted

    def test_released_slots_flow_to_queued_sessions(self):
        cap = 4
        system = run_whole(
            hot_config(admission=AdmissionSpec("fixed", max_streams=cap)),
            until=60.0,
        )
        # Churn (20s mean views) frees slots; queued sessions claim them.
        assert system.admission.wait_times.count > 0
        waited = [
            wait for wait in [system.admission.wait_times.maximum] if wait > 0
        ]
        assert waited, "no queued session was ever admitted"

    def test_capped_piggyback_run_is_deterministic(self):
        config = hot_config(admission=AdmissionSpec("fixed", max_streams=6))
        first = run_simulation(config)
        second = run_simulation(config)
        assert first.deterministic_dict() == second.deterministic_dict()
        assert first.admitted_sessions < first.offered_sessions


class TestPiggybackStillBatchesClosedTerminals:
    def test_closed_piggyback_unaffected_by_workload_layer(self):
        """The closed piggyback path (§8.2) must not notice the new
        workload machinery."""
        config = SpiffiConfig(
            nodes=2,
            disks_per_node=2,
            terminals=12,
            videos_per_disk=1,
            video_length_s=120.0,
            server_memory_bytes=256 * MB,
            piggyback_window_s=4.0,
            start_spread_s=2.0,
            warmup_grace_s=4.0,
            measure_s=20.0,
            seed=3,
        )
        system = run_whole(config, until=25.0)
        assert system.workload is None
        assert system.piggyback.terminals_batched > 0
        assert system.admission.admitted >= 12
