"""End-to-end tests of the session generator: churn, queueing,
determinism, QoS accounting, and the closed-system identity contract."""

import pytest

from repro import MB, SpiffiConfig, SpiffiSystem, run_simulation
from repro.server.admission import AdmissionSpec
from repro.telemetry import trace as trace_events
from repro.workload import ArrivalSpec


def open_config(**overrides):
    """A small open-system run that finishes in well under a second."""
    defaults = dict(
        nodes=2,
        disks_per_node=2,
        terminals=1,  # ignored once the workload is open
        videos_per_disk=2,
        video_length_s=600.0,
        server_memory_bytes=256 * MB,
        start_spread_s=4.0,
        warmup_grace_s=6.0,
        measure_s=30.0,
        seed=7,
        workload=ArrivalSpec(
            process="poisson",
            rate_per_s=0.5,
            mean_view_duration_s=20.0,
        ),
    )
    defaults.update(overrides)
    return SpiffiConfig(**defaults)


class TestOpenSystem:
    def test_sessions_arrive_and_churn(self):
        metrics = run_simulation(open_config())
        assert metrics.offered_sessions > 5
        assert metrics.admitted_sessions == metrics.offered_sessions
        # 20s mean views of 600s videos: sessions depart mid-video.
        assert metrics.abandoned_sessions > 0
        assert metrics.arrival_rate_per_s == pytest.approx(
            metrics.offered_sessions / 30.0
        )

    def test_realized_rate_near_configured(self):
        # A longer window so the Poisson average settles.
        metrics = run_simulation(open_config(measure_s=120.0))
        assert metrics.arrival_rate_per_s == pytest.approx(0.5, rel=0.4)

    def test_deterministic_across_runs(self):
        first = run_simulation(open_config())
        second = run_simulation(open_config())
        assert first.deterministic_dict() == second.deterministic_dict()

    def test_seed_changes_outcome(self):
        a = run_simulation(open_config(seed=7))
        b = run_simulation(open_config(seed=8))
        assert a.deterministic_dict() != b.deterministic_dict()

    def test_qos_percentiles_populated(self):
        metrics = run_simulation(open_config())
        assert metrics.startup_p50_s > 0.0
        assert metrics.startup_p50_s <= metrics.startup_p95_s <= metrics.startup_p99_s
        assert 0.0 < metrics.startup_slo_attainment <= 1.0

    def test_every_admitted_session_spawns_one_terminal(self):
        """Sessions and terminals must stay 1:1 (no double-counting)."""
        system = SpiffiSystem(open_config())
        system.start()
        system.env.run(until=20.0)  # no stats reset: totals since t=0
        assert len(system.terminals) == system.workload.stats.admitted
        assert system.admission.admitted == system.workload.stats.admitted

    def test_terminals_metric_counts_spawned_sessions(self):
        metrics = run_simulation(open_config())
        # terminals reports the spawned population, not config.terminals.
        assert metrics.terminals >= metrics.admitted_sessions


class TestWaitQueue:
    def tight_config(self, **overrides):
        return open_config(
            admission=AdmissionSpec("fixed", max_streams=4),
            measure_s=60.0,
            workload=ArrivalSpec(
                process="poisson",
                rate_per_s=0.8,
                mean_view_duration_s=30.0,
                queue_limit=3,
                mean_patience_s=4.0,
            ),
            **overrides,
        )

    def test_balk_and_renege_under_pressure(self):
        metrics = run_simulation(self.tight_config())
        assert metrics.balked_sessions > 0
        assert metrics.reneged_sessions > 0
        assert metrics.rejected_sessions == (
            metrics.balked_sessions + metrics.reneged_sessions
        )
        assert 0.0 < metrics.rejection_rate < 1.0
        accounted = metrics.admitted_sessions + metrics.rejected_sessions
        # Everything offered is admitted, rejected, or still queued.
        assert accounted <= metrics.offered_sessions

    def test_queue_statistics_collected(self):
        metrics = run_simulation(self.tight_config())
        assert metrics.admission_queue_len_max > 0
        assert metrics.admission_queue_len_max <= 3  # balk bound
        assert 0.0 < metrics.admission_queue_len_mean <= 3.0
        assert metrics.admission_max_wait_s > 0.0
        assert metrics.admission_max_wait_s >= metrics.admission_mean_wait_s

    def test_infinite_patience_never_reneges(self):
        config = open_config(
            admission=AdmissionSpec("fixed", max_streams=4),
            workload=ArrivalSpec(
                process="poisson",
                rate_per_s=0.8,
                mean_view_duration_s=30.0,
                queue_limit=500,
                mean_patience_s=0.0,
            ),
        )
        metrics = run_simulation(config)
        assert metrics.reneged_sessions == 0
        assert metrics.balked_sessions == 0


class TestSessionTracing:
    def test_lifecycle_events_recorded(self):
        system = SpiffiSystem(
            open_config(admission=AdmissionSpec("fixed", max_streams=4))
        )
        recorder = system.enable_session_tracing()
        system.run()
        assert recorder.counts[trace_events.SESSION_ARRIVE] > 0
        assert recorder.counts[trace_events.SESSION_ADMIT] > 0
        arrive = recorder.events(trace_events.SESSION_ARRIVE)[0]
        assert "session" in arrive.fields

    def test_queue_events_under_pressure(self):
        config = open_config(
            admission=AdmissionSpec("fixed", max_streams=2),
            workload=ArrivalSpec(
                process="poisson",
                rate_per_s=0.8,
                mean_view_duration_s=30.0,
                queue_limit=3,
                mean_patience_s=4.0,
            ),
        )
        system = SpiffiSystem(config)
        recorder = system.enable_session_tracing()
        system.run()
        assert recorder.counts[trace_events.QUEUE_ENTER] > 0
        assert recorder.counts[trace_events.SESSION_BALK] > 0
        assert recorder.counts[trace_events.SESSION_RENEGE] > 0

    def test_closed_system_has_no_sessions_to_trace(self):
        system = SpiffiSystem(SpiffiConfig(terminals=2, measure_s=5.0))
        with pytest.raises(ValueError):
            system.enable_session_tracing()


class TestHotsetRotation:
    def test_rotation_is_deterministic(self):
        config = open_config(
            workload=ArrivalSpec(
                process="poisson",
                rate_per_s=0.5,
                mean_view_duration_s=20.0,
                hotset_size=4,
                hotset_rotation_s=15.0,
            )
        )
        first = run_simulation(config)
        second = run_simulation(config)
        assert first.deterministic_dict() == second.deterministic_dict()

    def test_rotation_changes_traffic(self):
        static = run_simulation(open_config())
        rotated = run_simulation(
            open_config(
                workload=ArrivalSpec(
                    process="poisson",
                    rate_per_s=0.5,
                    mean_view_duration_s=20.0,
                    hotset_size=4,
                    hotset_rotation_s=15.0,
                )
            )
        )
        assert static.deterministic_dict() != rotated.deterministic_dict()


class TestClosedIdentity:
    """The closed default must be bit-identical to a pre-workload build."""

    def closed_config(self, **overrides):
        defaults = dict(
            nodes=2,
            disks_per_node=2,
            terminals=12,
            videos_per_disk=2,
            video_length_s=600.0,
            server_memory_bytes=256 * MB,
            start_spread_s=4.0,
            warmup_grace_s=6.0,
            measure_s=20.0,
            seed=7,
        )
        defaults.update(overrides)
        return SpiffiConfig(**defaults)

    def test_explicit_default_spec_is_identity(self):
        implicit = run_simulation(self.closed_config())
        explicit = run_simulation(
            self.closed_config(workload=ArrivalSpec())
        )
        assert implicit.deterministic_dict() == explicit.deterministic_dict()

    def test_closed_run_reports_zero_sessions(self):
        metrics = run_simulation(self.closed_config())
        assert metrics.offered_sessions == 0
        assert metrics.admitted_sessions == 0
        assert metrics.balked_sessions == 0
        assert metrics.reneged_sessions == 0
        assert metrics.arrival_rate_per_s == 0.0
        assert metrics.rejection_rate == 0.0

    def test_closed_system_builds_no_generator(self):
        system = SpiffiSystem(self.closed_config())
        assert system.workload is None
        assert len(system.terminals) == 12
