"""ProxySpec validation, labels, cache form, and the prefix-policy
registry/plans — the pure-value layer of the proxy tier."""

import dataclasses

import pytest

from repro.bufferpool.registry import ReplacementSpec
from repro.core.config import MB, SpiffiConfig
from repro.proxy import (
    BreadthFirst,
    HottestFirst,
    ProxySpec,
    make_prefix_policy,
    prefix_policy_names,
    proxy_cache_dict,
    register_prefix_policy,
)


class TestProxySpec:
    def test_default_is_disabled(self):
        spec = ProxySpec()
        assert not spec.enabled
        assert spec.label() == "no-proxy"

    def test_enabled_needs_memory(self):
        with pytest.raises(ValueError, match="memory"):
            ProxySpec(prefix_s=30.0)

    def test_memory_without_prefix_is_rejected(self):
        with pytest.raises(ValueError, match="prefix_s"):
            ProxySpec(memory_bytes=16 * MB)

    def test_negative_prefix_is_rejected(self):
        with pytest.raises(ValueError, match="prefix_s"):
            ProxySpec(prefix_s=-1.0)

    def test_unknown_policy_is_rejected(self):
        with pytest.raises(ValueError, match="unknown prefix policy"):
            ProxySpec(prefix_s=30.0, memory_bytes=16 * MB, policy="nope")

    def test_replacement_must_be_a_spec(self):
        with pytest.raises(TypeError, match="ReplacementSpec"):
            ProxySpec(prefix_s=30.0, memory_bytes=16 * MB, replacement="lru")

    def test_label_names_the_shape(self):
        spec = ProxySpec(prefix_s=60.0, memory_bytes=48 * MB)
        assert "60s" in spec.label()
        assert "48MB" in spec.label()
        assert "hottest" in spec.label()

    def test_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ProxySpec().prefix_s = 5.0


class TestCacheDict:
    def test_component_specs_collapse_to_names(self):
        spec = ProxySpec(
            prefix_s=30.0,
            memory_bytes=16 * MB,
            replacement=ReplacementSpec("love_prefetch"),
            policy="breadth",
        )
        assert proxy_cache_dict(spec) == {
            "prefix_s": 30.0,
            "memory_bytes": 16 * MB,
            "replacement": "love_prefetch",
            "policy": "breadth",
        }

    def test_enabled_proxy_changes_the_config_digest(self):
        from repro.experiments.results import config_digest

        base = SpiffiConfig(terminals=4)
        proxied = base.replace(
            proxy=ProxySpec(prefix_s=30.0, memory_bytes=16 * MB)
        )
        assert config_digest(base) != config_digest(proxied)

    def test_every_proxy_knob_is_digest_visible(self):
        from repro.experiments.results import config_digest

        variants = [
            ProxySpec(prefix_s=30.0, memory_bytes=16 * MB),
            ProxySpec(prefix_s=60.0, memory_bytes=16 * MB),
            ProxySpec(prefix_s=30.0, memory_bytes=32 * MB),
            ProxySpec(prefix_s=30.0, memory_bytes=16 * MB, policy="breadth"),
            ProxySpec(
                prefix_s=30.0,
                memory_bytes=16 * MB,
                replacement=ReplacementSpec("love_prefetch"),
            ),
        ]
        digests = {
            config_digest(SpiffiConfig(terminals=4, proxy=spec))
            for spec in variants
        }
        assert len(digests) == len(variants)


class TestSpiffiConfigValidation:
    def test_proxy_must_be_a_spec(self):
        with pytest.raises(TypeError, match="ProxySpec"):
            SpiffiConfig(terminals=4, proxy="yes please")

    def test_proxy_memory_must_hold_a_block(self):
        config = SpiffiConfig(terminals=4)
        with pytest.raises(ValueError, match="block"):
            config.replace(
                proxy=ProxySpec(prefix_s=30.0, memory_bytes=1024)
            )

    def test_enabled_proxy_shows_in_describe(self):
        config = SpiffiConfig(
            terminals=4, proxy=ProxySpec(prefix_s=30.0, memory_bytes=16 * MB)
        )
        assert "proxy" in config.describe()
        assert "proxy" not in SpiffiConfig(terminals=4).describe()


class TestPolicies:
    WEIGHTS = [0.1, 0.6, 0.3]  # popularity order: 1, 2, 0
    PREFIX = [2, 2, 1]

    def test_hottest_first_is_depth_first(self):
        plan = list(HottestFirst().plan(self.WEIGHTS, self.PREFIX))
        assert plan == [(1, 0), (1, 1), (2, 0), (0, 0), (0, 1)]

    def test_breadth_first_is_block_major(self):
        plan = list(BreadthFirst().plan(self.WEIGHTS, self.PREFIX))
        assert plan == [(1, 0), (2, 0), (0, 0), (1, 1), (0, 1)]

    def test_ties_break_by_title_id(self):
        plan = list(HottestFirst().plan([0.5, 0.5], [1, 1]))
        assert plan == [(0, 0), (1, 0)]

    def test_builtins_are_registered(self):
        assert "hottest" in prefix_policy_names()
        assert "breadth" in prefix_policy_names()

    def test_make_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown prefix policy"):
            make_prefix_policy("absent")

    def test_third_party_registration(self):
        class Reversed:
            def plan(self, weights, prefix_blocks):
                for vid in reversed(range(len(weights))):
                    for block in range(prefix_blocks[vid]):
                        yield vid, block

        register_prefix_policy("test-reversed", Reversed)
        try:
            spec = ProxySpec(
                prefix_s=30.0, memory_bytes=16 * MB, policy="test-reversed"
            )
            assert isinstance(spec.build_policy(), Reversed)
        finally:
            from repro.proxy import policies

            del policies._REGISTRY["test-reversed"]

    def test_bad_registration_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_prefix_policy("", HottestFirst)
