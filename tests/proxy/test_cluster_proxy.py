"""The edge proxy in front of a cluster: global-catalog pre-load,
local-id translation, interconnect miss traffic, and config guards."""

import pytest

from repro.cluster import ClusterConfig, SpiffiCluster, run_cluster
from repro.cluster.placement import PlacementSpec
from repro.core.config import MB, SpiffiConfig
from repro.proxy import ProxySpec
from repro.workload import ArrivalSpec


def member(**overrides):
    defaults = dict(
        nodes=1,
        disks_per_node=2,
        terminals=1,  # ignored: the cluster workload is open
        videos_per_disk=2,
        video_length_s=600.0,
        server_memory_bytes=64 * MB,
        start_spread_s=2.0,
        warmup_grace_s=4.0,
        measure_s=30.0,
        seed=7,
    )
    defaults.update(overrides)
    return SpiffiConfig(**defaults)


def workload(rate_per_s=0.5):
    return ArrivalSpec(
        process="poisson",
        rate_per_s=rate_per_s,
        mean_view_duration_s=20.0,
    )


def cluster_config(**overrides):
    defaults = dict(
        node=member(),
        nodes=2,
        workload=workload(),
        proxy=ProxySpec(prefix_s=10.0, memory_bytes=24 * MB),
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


class TestConfigGuards:
    def test_cluster_proxy_needs_an_open_workload(self):
        with pytest.raises(ValueError, match="open cluster workload"):
            ClusterConfig(
                node=member(),
                proxy=ProxySpec(prefix_s=10.0, memory_bytes=24 * MB),
            )

    def test_member_proxy_is_rejected(self):
        with pytest.raises(ValueError, match="cluster owns the proxy"):
            ClusterConfig(
                node=member(
                    proxy=ProxySpec(prefix_s=10.0, memory_bytes=24 * MB)
                ),
                nodes=2,
                workload=workload(),
            )

    def test_proxy_must_be_a_spec(self):
        with pytest.raises(TypeError, match="ProxySpec"):
            ClusterConfig(node=member(), proxy="edge")

    def test_enabled_proxy_shows_in_describe_and_digest(self):
        from repro.experiments.results import config_digest

        proxied = cluster_config()
        plain = cluster_config(proxy=ProxySpec())
        assert "proxy" in proxied.describe()
        assert config_digest(proxied) != config_digest(plain)


class TestEdgeProxy:
    def test_preload_spans_the_global_catalog(self):
        cluster = SpiffiCluster(cluster_config())
        runtime = cluster.proxy_runtime
        assert runtime is not None
        assert len(runtime.prefix_blocks) == cluster.placement.catalog_size
        assert all(member.proxy is not None for member in cluster.members)

    def test_views_translate_local_ids_to_global(self):
        cluster = SpiffiCluster(cluster_config())
        placement = cluster.placement
        for title in range(placement.catalog_size):
            node = placement.primary(title)
            local = placement.local_id(title, node)
            view = cluster.members[node].proxy
            assert view.serves(local, 0) == cluster.proxy_runtime.serves(title, 0)

    def test_cluster_metrics_carry_proxy_counters(self):
        metrics = run_cluster(cluster_config())
        assert metrics.proxy_requests > 0
        assert metrics.proxy_hits + metrics.proxy_misses == metrics.proxy_requests

    def test_replicated_placement_shares_one_cache(self):
        metrics = run_cluster(
            cluster_config(placement=PlacementSpec("replicated"))
        )
        assert metrics.proxy_requests > 0

    def test_cluster_proxy_runs_are_deterministic(self):
        config = cluster_config()
        first = run_cluster(config)
        second = run_cluster(config)
        assert first.deterministic_dict() == second.deterministic_dict()


class TestInterconnectControlTraffic:
    def test_front_door_routing_is_charged_to_the_interconnect(self):
        # Even without a proxy, every routed session costs the bus one
        # control message, so an open cluster's interconnect is busy.
        cluster = SpiffiCluster(cluster_config(proxy=ProxySpec()))
        cluster.run()
        assert cluster.interconnect.mean_bandwidth() > 0.0

    def test_proxy_misses_forward_over_the_interconnect(self):
        # A one-block proxy cache over a 10 s prefix: nearly every
        # proxy request misses and must cross the interconnect.
        tight = cluster_config(
            proxy=ProxySpec(prefix_s=10.0, memory_bytes=512 * 1024)
        )
        cluster = SpiffiCluster(tight)
        cluster.run()
        assert cluster.proxy_runtime.stats.misses > 0
        assert cluster.interconnect.mean_bandwidth() > 0.0
