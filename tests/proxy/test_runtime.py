"""The proxy runtime against a live standalone system: pre-loading,
hit/miss accounting invariants, budget discipline, tracing, startup
improvement, and determinism."""

import pytest

from repro.bufferpool.pool import BufferPool
from repro.bufferpool.registry import ReplacementSpec
from repro.core.config import MB, SpiffiConfig
from repro.core.system import SpiffiSystem, run_simulation
from repro.proxy import ProxySpec, prefix_block_count
from repro.proxy.runtime import ProxyRuntime
from repro.sim.environment import Environment
from repro.telemetry import trace as trace_events
from repro.workload import ArrivalSpec


def open_config(**overrides):
    """A small open-system run; 8 titles of 600 s at ~0.5 MB/block."""
    defaults = dict(
        nodes=2,
        disks_per_node=2,
        terminals=1,  # ignored once the workload is open
        videos_per_disk=2,
        video_length_s=600.0,
        server_memory_bytes=64 * MB,
        start_spread_s=4.0,
        warmup_grace_s=6.0,
        measure_s=30.0,
        seed=7,
        workload=ArrivalSpec(
            process="poisson",
            rate_per_s=0.5,
            mean_view_duration_s=20.0,
        ),
    )
    defaults.update(overrides)
    return SpiffiConfig(**defaults)


def proxied(prefix_s=20.0, memory_bytes=48 * MB, **spec_over):
    return open_config(
        proxy=ProxySpec(
            prefix_s=prefix_s, memory_bytes=memory_bytes, **spec_over
        )
    )


class TestPrefixBlockCount:
    class Sequence:
        def __init__(self, frame_count, fps, cumulative_list):
            self.frame_count = frame_count
            self.fps = fps
            self.cumulative_list = cumulative_list

    class Schedule:
        def __init__(self, sequence, block_size, block_count):
            self.sequence = sequence
            self.block_size = block_size
            self.block_count = block_count

    def schedule(self, frames=10, fps=2.0, bytes_per_frame=100):
        cumulative = [frame * bytes_per_frame for frame in range(frames + 1)]
        return self.Schedule(
            self.Sequence(frames, fps, cumulative),
            block_size=250,
            block_count=4,
        )

    def test_zero_prefix_is_zero_blocks(self):
        assert prefix_block_count(self.schedule(), 0.0) == 0

    def test_rounds_up_to_whole_blocks(self):
        # 2 s at 2 fps = 4 frames = 400 bytes = 1.6 blocks -> 2.
        assert prefix_block_count(self.schedule(), 2.0) == 2

    def test_caps_at_the_title_length(self):
        assert prefix_block_count(self.schedule(), 1e9) == 4


class TestInsertResident:
    def make_pool(self, capacity=4):
        env = Environment()
        pool = BufferPool(env, capacity, ReplacementSpec().build())
        return env, pool

    def test_inserts_a_loaded_unpinned_page(self):
        env, pool = self.make_pool()
        page = pool.insert_resident(("v", 0), 100)
        assert page is not None
        assert not page.in_flight
        assert page.pins == 0
        assert pool.pages[("v", 0)] is page

    def test_schedules_no_simulation_events(self):
        env, pool = self.make_pool()
        pool.insert_resident(("v", 0), 100, prefetched=True)
        assert env.peek() is None or env.peek() == float("inf")

    def test_duplicate_returns_none(self):
        env, pool = self.make_pool()
        assert pool.insert_resident(("v", 0), 100) is not None
        assert pool.insert_resident(("v", 0), 100) is None

    def test_never_evicts_past_capacity(self):
        env, pool = self.make_pool(capacity=2)
        assert pool.insert_resident(("v", 0), 100) is not None
        assert pool.insert_resident(("v", 1), 100) is not None
        assert pool.insert_resident(("v", 2), 100) is None
        assert len(pool.pages) == 2

    def test_prefetched_flag_counts_toward_residency(self):
        env, pool = self.make_pool()
        pool.insert_resident(("v", 0), 100, prefetched=True)
        assert pool.prefetched_resident == 1


class TestConstruction:
    def test_preload_respects_the_budget(self):
        system = SpiffiSystem(proxied(memory_bytes=4 * MB))  # 8 blocks
        runtime = system.proxy_runtime
        assert runtime.preloaded_pages == runtime.pool.capacity_pages == 8
        assert len(runtime.pool.pages) <= runtime.pool.capacity_pages

    def test_full_budget_holds_every_prefix(self):
        system = SpiffiSystem(proxied(prefix_s=10.0, memory_bytes=48 * MB))
        runtime = system.proxy_runtime
        assert runtime.preloaded_pages == sum(runtime.prefix_blocks)

    def test_serves_only_inside_the_prefix_window(self):
        system = SpiffiSystem(proxied(prefix_s=10.0))
        runtime = system.proxy_runtime
        depth = runtime.prefix_blocks[0]
        assert depth > 0
        assert runtime.serves(0, 0)
        assert runtime.serves(0, depth - 1)
        assert not runtime.serves(0, depth)
        assert not runtime.serves(-1, 0)
        assert not runtime.serves(len(runtime.prefix_blocks), 0)

    def test_disabled_spec_builds_no_proxy(self):
        system = SpiffiSystem(open_config())
        assert system.proxy_runtime is None
        assert system.proxy is None

    def test_mismatched_weights_are_rejected(self):
        system = SpiffiSystem(open_config())
        schedules = [v.schedule(system.config.stripe_bytes) for v in system.library]
        with pytest.raises(ValueError, match="weights"):
            ProxyRuntime(
                system.env,
                ProxySpec(prefix_s=10.0, memory_bytes=4 * MB),
                schedules=schedules,
                weights=[1.0],
                block_size=system.config.stripe_bytes,
                forward_bus=system.bus,
                control_message_bytes=system.config.control_message_bytes,
            )


class TestAccountingInvariants:
    def run_system(self, config):
        system = SpiffiSystem(config)
        metrics = system.run()
        return system, metrics

    def test_hits_plus_misses_equals_requests(self):
        system, metrics = self.run_system(proxied(memory_bytes=4 * MB))
        stats = system.proxy_runtime.stats
        assert stats.requests > 0
        assert stats.hits + stats.misses == stats.requests
        assert metrics.proxy_requests == stats.requests
        assert metrics.proxy_hits == stats.hits
        assert metrics.proxy_misses == stats.misses

    def test_resident_bytes_never_exceed_the_budget(self):
        system, _ = self.run_system(proxied(memory_bytes=4 * MB))
        pool = system.proxy_runtime.pool
        resident = sum(page.size for page in pool.pages.values())
        assert resident <= system.config.proxy.memory_bytes

    def test_full_coverage_serves_every_startup_from_memory(self):
        # Budget >= every prefix block: after pre-load nothing misses.
        system, metrics = self.run_system(
            proxied(prefix_s=10.0, memory_bytes=48 * MB)
        )
        stats = system.proxy_runtime.stats
        assert stats.requests > 0
        assert stats.misses == 0
        assert stats.hit_rate == 1.0
        assert metrics.proxy_served_bytes > 0
        assert metrics.proxy_origin_bytes == 0

    def test_tight_budget_misses_and_fills(self):
        system, metrics = self.run_system(proxied(memory_bytes=4 * MB))
        stats = system.proxy_runtime.stats
        assert stats.misses > 0
        assert metrics.proxy_origin_bytes > 0

    def test_metrics_expose_the_hit_rate(self):
        _, metrics = self.run_system(proxied(prefix_s=10.0, memory_bytes=48 * MB))
        assert metrics.proxy_hit_rate == 1.0
        assert "proxy" in metrics.summary()

    def test_disabled_proxy_reports_inert_zeros(self):
        _, metrics = self.run_system(open_config())
        assert metrics.proxy_requests == 0
        assert metrics.proxy_hit_rate == 0.0
        assert "proxy_requests" not in metrics.deterministic_dict()


class TestTracing:
    def test_proxy_events_are_recorded(self):
        system = SpiffiSystem(proxied(memory_bytes=4 * MB))
        recorder = system.enable_proxy_tracing()
        system.run()
        kinds = {event.kind for event in recorder.events()}
        assert trace_events.PROXY_HIT in kinds
        assert trace_events.PROXY_MISS in kinds
        assert trace_events.PROXY_FILL in kinds

    def test_tracing_without_a_proxy_raises(self):
        system = SpiffiSystem(open_config())
        with pytest.raises(ValueError, match="no proxy"):
            system.enable_proxy_tracing()


class TestBehaviour:
    def test_proxy_cuts_startup_latency(self):
        base = run_simulation(open_config())
        edge = run_simulation(proxied(prefix_s=10.0, memory_bytes=48 * MB))
        assert edge.proxy_hits > 0
        assert edge.mean_startup_latency_s < base.mean_startup_latency_s

    def test_love_prefetch_ablation_runs(self):
        metrics = run_simulation(
            proxied(
                memory_bytes=4 * MB,
                replacement=ReplacementSpec("love_prefetch"),
            )
        )
        assert metrics.proxy_requests > 0

    def test_runs_are_deterministic(self):
        config = proxied(memory_bytes=4 * MB)
        first = run_simulation(config)
        second = run_simulation(config)
        assert first.deterministic_dict() == second.deterministic_dict()

    def test_proxy_changes_the_simulation(self):
        base = run_simulation(open_config())
        edge = run_simulation(proxied(memory_bytes=4 * MB))
        assert base.deterministic_dict() != edge.deterministic_dict()
