"""Cluster-wide metrics aggregation invariants."""

import dataclasses

import pytest

from repro.cluster import ClusterConfig, SpiffiCluster, run_cluster
from repro.core.system import run_simulation
from repro.server.admission import AdmissionSpec
from tests.cluster.conftest import open_workload, small_cluster, small_node


class TestAggregation:
    @pytest.fixture(scope="class")
    def run(self):
        cluster = SpiffiCluster(small_cluster())
        metrics = cluster.run()
        return cluster, metrics

    def test_terminal_counters_sum_over_members(self, run):
        cluster, metrics = run
        terminals = [t for m in cluster.members for t in m.terminals]
        assert metrics.terminals == len(terminals)
        assert metrics.blocks_delivered == sum(
            t.stats.blocks_received for t in terminals
        )
        assert metrics.videos_completed == sum(
            t.stats.videos_completed for t in terminals
        )
        assert metrics.glitches == sum(t.stats.glitches for t in terminals)

    def test_session_accounting_comes_from_the_front_door(self, run):
        cluster, metrics = run
        stats = cluster.workload.stats
        assert metrics.offered_sessions == stats.offered
        assert metrics.admitted_sessions == stats.admitted
        assert metrics.completed_sessions == stats.completed
        assert metrics.arrival_rate_per_s == pytest.approx(
            stats.offered / metrics.measure_s
        )

    def test_utilization_and_bandwidth_are_sane(self, run):
        _, metrics = run
        assert (
            0.0
            <= metrics.disk_utilization_min
            <= metrics.disk_utilization_mean
            <= metrics.disk_utilization_max
            <= 1.0
        )
        assert metrics.network_mean_bytes_per_s > 0
        assert metrics.network_peak_bytes_per_s >= metrics.network_mean_bytes_per_s

    def test_startup_qos_is_cluster_wide(self, run):
        cluster, metrics = run
        assert metrics.startup_p99_s >= metrics.startup_p50_s >= 0.0
        assert metrics.startup_slo_attainment == cluster.qos.slo_attainment


class TestPerNodeBreakdown:
    @pytest.fixture(scope="class")
    def run(self):
        cluster = SpiffiCluster(small_cluster())
        metrics = cluster.run()
        return cluster, metrics

    def test_one_entry_per_member_in_node_order(self, run):
        cluster, metrics = run
        assert len(metrics.per_node) == len(cluster.members)
        assert [entry["node"] for entry in metrics.per_node] == list(
            range(len(cluster.members))
        )

    def test_breakdowns_sum_to_the_aggregates(self, run):
        cluster, metrics = run
        per_node = metrics.per_node
        assert sum(e["routed"] for e in per_node) == sum(
            cluster.workload.stats.routed
        )
        assert (
            sum(e["blocks_delivered"] for e in per_node)
            == metrics.blocks_delivered
        )
        assert sum(e["glitches"] for e in per_node) == metrics.glitches
        assert all(e["available"] for e in per_node)
        assert all(
            0.0 <= e["disk_utilization_mean"] <= 1.0 for e in per_node
        )

    def test_diagnostic_only_never_in_the_digest(self, run):
        _, metrics = run
        assert "per_node" not in metrics.deterministic_dict()
        # ... so the aggregate dict is identical with the field blanked.
        stripped = dataclasses.replace(metrics, per_node=())
        assert stripped.deterministic_dict() == metrics.deterministic_dict()


class TestSingleNodePassthrough:
    def test_closed_one_node_cluster_equals_standalone_run(self):
        node = small_node(terminals=8)
        direct = run_simulation(node)
        clustered = run_cluster(ClusterConfig(node=node))
        assert clustered.deterministic_dict() == direct.deterministic_dict()

    def test_execution_accounting_stamped(self):
        metrics = run_cluster(ClusterConfig(node=small_node(terminals=4)))
        assert metrics.events_processed > 0
        assert metrics.events_per_second > 0
        assert metrics.wall_time_s > 0


class TestRejectionPaths:
    def test_tight_admission_produces_balks_and_reneges(self):
        config = small_cluster(
            node=small_node(admission=AdmissionSpec("fixed", max_streams=2)),
            workload=open_workload(
                rate_per_s=1.0, queue_limit=2, mean_patience_s=2.0
            ),
        )
        cluster = SpiffiCluster(config)
        metrics = cluster.run()
        stats = cluster.workload.stats
        assert stats.balked > 0
        assert stats.reneged > 0
        assert metrics.balked_sessions == stats.balked
        assert metrics.reneged_sessions == stats.reneged
        assert metrics.rejection_rate > 0
