"""Catalog placement schemes: host maps, local ids, and the registry."""

import pytest

from repro.cluster import PlacementSpec, placement_names, register_placement
from repro.cluster.placement import CatalogPlacement


class TestPartitioned:
    def test_distinct_slices(self):
        placement = PlacementSpec("partitioned").build(2, 4)
        assert placement.catalog_size == 8
        for title in range(8):
            assert placement.nodes_for(title) == (title // 4,)
            assert placement.primary(title) == title // 4
            assert placement.replication_of(title) == 1

    def test_local_ids_are_the_slice_offsets(self):
        placement = PlacementSpec("partitioned").build(2, 4)
        for title in range(8):
            assert placement.local_id(title, title // 4) == title % 4
        assert placement.local_count(0) == 4
        assert placement.local_count(1) == 4

    def test_unhosted_title_raises(self):
        placement = PlacementSpec("partitioned").build(2, 4)
        with pytest.raises(ValueError, match="not hosted"):
            placement.local_id(0, 1)


class TestReplicated:
    def test_every_node_hosts_everything(self):
        placement = PlacementSpec("replicated").build(3, 4)
        assert placement.catalog_size == 4
        for title in range(4):
            assert sorted(placement.nodes_for(title)) == [0, 1, 2]
            assert placement.replication_of(title) == 3

    def test_primaries_rotate(self):
        placement = PlacementSpec("replicated").build(3, 4)
        assert [placement.primary(t) for t in range(4)] == [0, 1, 2, 0]

    def test_local_ids_identical_everywhere(self):
        placement = PlacementSpec("replicated").build(3, 4)
        for title in range(4):
            for node in range(3):
                assert placement.local_id(title, node) == title
        assert all(placement.local_count(n) == 4 for n in range(3))


class TestHybrid:
    def test_hot_titles_everywhere_cold_partitioned(self):
        spec = PlacementSpec("hybrid-hot-replicated", hot_titles=2)
        placement = spec.build(2, 3)
        assert placement.catalog_size == 6
        for title in (0, 1):
            assert sorted(placement.nodes_for(title)) == [0, 1]
        for title in (2, 3, 4, 5):
            assert placement.nodes_for(title) == (title // 3,)

    def test_local_ids_ascend_per_node(self):
        spec = PlacementSpec("hybrid-hot-replicated", hot_titles=2)
        placement = spec.build(2, 3)
        # Node 0 hosts titles 0, 1, 2; node 1 hosts 0, 1, 3, 4, 5.
        assert placement.local_count(0) == 3
        assert placement.local_count(1) == 5
        assert [placement.local_id(t, 0) for t in (0, 1, 2)] == [0, 1, 2]
        assert [placement.local_id(t, 1) for t in (0, 1, 3, 4, 5)] == list(range(5))

    def test_oversized_hotset_rejected(self):
        spec = PlacementSpec("hybrid-hot-replicated", hot_titles=7)
        with pytest.raises(ValueError, match="exceeds"):
            spec.build(2, 3)


class TestSpec:
    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown placement"):
            PlacementSpec("sharded")

    def test_hot_titles_validation(self):
        with pytest.raises(ValueError, match=">= 0"):
            PlacementSpec("partitioned", hot_titles=-1)
        with pytest.raises(ValueError, match="hot_titles > 0"):
            PlacementSpec("hybrid-hot-replicated")
        with pytest.raises(ValueError, match="takes no hot_titles"):
            PlacementSpec("replicated", hot_titles=3)

    def test_videos_per_node_validated(self):
        with pytest.raises(ValueError, match="at least one video"):
            PlacementSpec("partitioned").build(2, 0)

    def test_labels(self):
        assert PlacementSpec("replicated").label() == "replicated"
        spec = PlacementSpec("hybrid-hot-replicated", hot_titles=4)
        assert spec.label() == "hybrid-hot-replicated(4)"


class TestRegistry:
    def test_builtins_registered(self):
        names = placement_names()
        assert {"partitioned", "replicated", "hybrid-hot-replicated"} <= set(names)

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty string"):
            register_placement("", lambda spec, nodes, per: None)

    def test_third_party_scheme_pluggable(self):
        def everything_on_node_zero(spec, nodes, per):
            return CatalogPlacement(nodes, [(0,) for _ in range(per)])

        register_placement("test-node-zero", everything_on_node_zero)
        placement = PlacementSpec("test-node-zero").build(3, 2)
        assert placement.local_count(0) == 2
        assert placement.local_count(1) == 0


class TestCatalogPlacement:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="at least one node"):
            CatalogPlacement(0, [])
        with pytest.raises(ValueError, match="no hosting node"):
            CatalogPlacement(2, [()])
        with pytest.raises(ValueError, match="outside"):
            CatalogPlacement(2, [(2,)])
