"""Cluster self-healing: the spec, the build-time rebuild plan, and the
live re-replication / rejoin / spill behaviour.

The simulated scenarios run a 3-node chained-declustered(2) cluster of
small short-video members (8 titles each, 4 s / ~2 MB per title), so a
full node rebuild moves ~32 MB and finishes well inside the measurement
window at the 4 MB/s default cap.  The 12-title catalog has hosts
``(t % 3, (t + 1) % 3)``.  Node 1 fails 5 s into measurement; the
staggered double-outage script fails node 2 another 8 s later — after
the rebuild window, so healing decides whether the second failure loses
titles.
"""

import functools

import pytest

from repro.cluster import (
    ClusterConfig,
    PlacementSpec,
    RebuildPlan,
    RouterSpec,
    SelfHealSpec,
    SpiffiCluster,
    run_cluster,
)
from repro.cluster.config import cluster_cache_dict
from repro.core.config import MB, SpiffiConfig
from repro.experiments.results import config_digest
from repro.faults.spec import FaultSpec
from repro.server.admission import AdmissionSpec
from repro.telemetry import trace as trace_events
from repro.workload import ArrivalSpec

CHAINED = PlacementSpec("chained-declustered", replicas=2)

#: Node 1 dies 5 s into the measurement window (warmup is 2 + 4 = 6 s).
FAIL_AT = 11.0
#: The staggered second outage trails the first by two rebuild windows.
STAGGER = 8.0

SINGLE = FaultSpec(fail_node_ids=(1,), fail_nodes_at_s=FAIL_AT)
DOUBLE = FaultSpec(
    fail_node_ids=(1, 2), fail_nodes_at_s=FAIL_AT, fail_node_stagger_s=STAGGER
)
RECOVERING = FaultSpec(
    fail_node_ids=(1,), fail_nodes_at_s=FAIL_AT, node_recover_after_s=8.0
)

HEAL = SelfHealSpec(rebuild=True)


def short_member(**overrides) -> SpiffiConfig:
    """A member with a 4 s-video catalog: 2 MB per title, so rebuilds
    complete quickly, plus skewed demand and tight admission headroom
    so outage survivors actually queue (what spill needs)."""
    defaults = dict(
        nodes=2,
        disks_per_node=2,
        terminals=1,  # ignored: the cluster workload is open
        videos_per_disk=2,
        video_length_s=4.0,
        server_memory_bytes=64 * MB,
        zipf_skew=0.9,
        admission=AdmissionSpec("bandwidth", headroom=0.5),
        start_spread_s=2.0,
        warmup_grace_s=4.0,
        measure_s=24.0,
    )
    defaults.update(overrides)
    return SpiffiConfig(**defaults)


def heal_workload(rate_per_s=6.0) -> ArrivalSpec:
    return ArrivalSpec(
        process="poisson",
        rate_per_s=rate_per_s,
        mean_view_duration_s=30.0,
        queue_limit=4,
        mean_patience_s=10.0,
        startup_slo_s=10.0,
    )


def heal_config(
    faults=SINGLE,
    self_heal=HEAL,
    placement=CHAINED,
    rate_per_s=6.0,
) -> ClusterConfig:
    return ClusterConfig(
        node=short_member(),
        nodes=3,
        placement=placement,
        routing=RouterSpec("locality"),
        workload=heal_workload(rate_per_s),
        faults=faults,
        self_heal=self_heal,
    )


@functools.lru_cache(maxsize=None)
def run_cached(config: ClusterConfig):
    """One live cluster per config, shared across this module's tests."""
    cluster = SpiffiCluster(config)
    return cluster, cluster.run()


class TestSelfHealSpec:
    def test_default_spec_is_inert(self):
        spec = SelfHealSpec()
        assert not spec.enabled
        assert spec.label() == "no self-heal"

    def test_either_knob_enables(self):
        assert SelfHealSpec(rebuild=True).enabled
        assert SelfHealSpec(placement_aware_admission=True).enabled

    def test_label_names_the_active_knobs(self):
        spec = SelfHealSpec(rebuild=True, placement_aware_admission=True)
        assert spec.label() == "heal(rebuild@4MB/s, spill)"

    @pytest.mark.parametrize("bandwidth", [0.0, -1.0, float("inf")])
    def test_bad_bandwidth_is_rejected(self, bandwidth):
        with pytest.raises(ValueError, match="rebuild_bandwidth_bytes_per_s"):
            SelfHealSpec(rebuild_bandwidth_bytes_per_s=bandwidth)

    @pytest.mark.parametrize("fraction", [-0.1, 1.1])
    def test_resync_fraction_outside_unit_interval_is_rejected(self, fraction):
        with pytest.raises(ValueError, match="rejoin_resync_fraction"):
            SelfHealSpec(rejoin_resync_fraction=fraction)

    def test_negative_load_penalty_is_rejected(self):
        with pytest.raises(ValueError, match="rebuild_load_penalty"):
            SelfHealSpec(rebuild_load_penalty=-1.0)

    def test_spec_is_immutable(self):
        with pytest.raises(AttributeError):
            SelfHealSpec().rebuild = True


class TestRebuildPlan:
    """Against the 3-node chained(2) placement over 4-video members:
    6 titles, hosts ``(t % 3, (t + 1) % 3)``, 4 titles per node."""

    def placement(self):
        return CHAINED.build(3, 4)

    def test_single_outage_replans_every_hosted_title(self):
        plan = RebuildPlan(self.placement(), (1,))
        work = plan.per_dead[1]
        assert [item.title for item in work] == [0, 1, 3, 4]
        # The destination is always the one non-host survivor.
        assert [item.dest for item in work] == [2, 0, 2, 0]
        assert plan.total_titles == 4

    def test_spare_slots_sit_past_the_built_catalog(self):
        plan = RebuildPlan(self.placement(), (1,))
        assert plan.spares == [2, 0, 2]
        # Each node stores 4 videos; spares take local ids 4, 5.
        locals_per_dest = {}
        for item in plan.per_dead[1]:
            locals_per_dest.setdefault(item.dest, []).append(item.dest_local)
        assert locals_per_dest == {0: [4, 5], 2: [4, 5]}

    def test_double_outage_plans_each_title_once(self):
        plan = RebuildPlan(self.placement(), (1, 2))
        # Titles hosted on both doomed nodes plan once, under the first
        # death; titles whose only survivor-candidate set is empty
        # (a surviving node already hosts them) are skipped.
        assert [item.title for item in plan.per_dead[1]] == [1, 4]
        assert plan.per_dead[2] == []
        assert plan.spares == [2, 0, 0]

    def test_fully_replicated_placement_needs_no_plan(self):
        placement = PlacementSpec("replicated").build(3, 4)
        plan = RebuildPlan(placement, (1,))
        assert plan.total_titles == 0
        assert plan.spares == [0, 0, 0]

    def test_partitioned_placement_still_reserves_destinations(self):
        # Plan-time optimism: destinations exist, and whether a source
        # survives is decided when the copy runs.
        plan = RebuildPlan(PlacementSpec("partitioned").build(3, 4), (1,))
        assert plan.total_titles == 4


class TestConfigValidation:
    def test_rebuild_without_scripted_outages_is_rejected(self):
        with pytest.raises(ValueError, match="fail_node_ids is empty"):
            heal_config(faults=FaultSpec())

    def test_self_healing_needs_a_multi_node_cluster(self):
        with pytest.raises(ValueError, match="multi-node"):
            ClusterConfig(
                node=short_member(),
                self_heal=SelfHealSpec(placement_aware_admission=True),
            )

    def test_self_heal_must_be_a_spec(self):
        with pytest.raises(TypeError, match="SelfHealSpec"):
            heal_config(self_heal={"rebuild": True})

    def test_describe_names_the_heal_spec_only_when_enabled(self):
        assert "heal(rebuild@4MB/s)" in heal_config().describe()
        assert "heal" not in heal_config(
            faults=SINGLE, self_heal=SelfHealSpec()
        ).describe()


class TestCacheCanonicalisation:
    def test_default_spec_leaves_the_cache_dict_untouched(self):
        payload = cluster_cache_dict(
            heal_config(self_heal=SelfHealSpec())
        )["cluster"]
        assert "self_heal" not in payload
        assert "fail_node_stagger_s" not in payload["faults"]

    def test_default_replicas_are_omitted(self):
        config = ClusterConfig(
            node=short_member(), nodes=2, workload=heal_workload()
        )
        payload = cluster_cache_dict(config)["cluster"]
        assert "replicas" not in payload["placement"]
        replicated = cluster_cache_dict(heal_config())["cluster"]
        assert replicated["placement"]["replicas"] == 2

    def test_stagger_appears_only_when_nonzero(self):
        payload = cluster_cache_dict(heal_config(faults=DOUBLE))["cluster"]
        assert payload["faults"]["fail_node_stagger_s"] == STAGGER

    def test_enabled_spec_changes_the_digest(self):
        inert = heal_config(faults=SINGLE, self_heal=SelfHealSpec())
        healing = heal_config(faults=SINGLE)
        assert "self_heal" in cluster_cache_dict(healing)["cluster"]
        assert config_digest(inert) != config_digest(healing)


class TestInertDefault:
    def test_no_manager_no_spares_no_spill(self):
        cluster = SpiffiCluster(
            heal_config(faults=SINGLE, self_heal=SelfHealSpec())
        )
        assert cluster.rebuild_manager is None
        assert len(cluster.members[0].library) == 8
        load = cluster.rebuild_load(0)
        assert load == 0 and isinstance(load, int)
        assert cluster.spill_target(0, 0, 4) is None

    def test_tracing_without_a_manager_raises(self):
        cluster = SpiffiCluster(
            heal_config(faults=SINGLE, self_heal=SelfHealSpec())
        )
        with pytest.raises(ValueError, match="no self-healing rebuild"):
            cluster.enable_cluster_tracing()


class TestRebuildRestoresDegree:
    def test_every_title_regains_two_surviving_hosts(self):
        cluster, metrics = run_cached(heal_config())
        placement = cluster.placement
        for title in range(placement.catalog_size):
            survivors = [n for n in placement.nodes_for(title) if n != 1]
            assert len(survivors) >= 2
        assert metrics.node_titles_rebuilt == 8
        assert metrics.node_titles_unrecoverable == 0
        assert cluster.rebuild_manager.pending == 0

    def test_restore_time_tracks_the_bandwidth_cap(self):
        _, metrics = run_cached(heal_config())
        cap = HEAL.rebuild_bandwidth_bytes_per_s
        predicted = metrics.node_rebuild_bytes / cap
        assert metrics.node_rebuild_bytes > 0
        assert predicted <= metrics.replication_restore_s <= 1.5 * predicted

    def test_spare_slots_extend_the_library_without_perturbing_it(self):
        healing = SpiffiCluster(heal_config())
        baseline = SpiffiCluster(
            heal_config(faults=SINGLE, self_heal=SelfHealSpec())
        )
        # Nodes 0 and 2 split the dead member's 8 titles: 4 spares
        # each, while the doomed member itself is built unchanged.
        assert healing.heal_plan.spares == [4, 0, 4]
        for built, plain, spares in zip(
            healing.members, baseline.members, healing.heal_plan.spares
        ):
            assert len(built.library) == len(plain.library) + spares
            for mine, theirs in zip(built.library, plain.library):
                assert mine.total_bytes == theirs.total_bytes
                assert mine.frame_count == theirs.frame_count


class TestSeededReplicaMismatch:
    def test_rebuild_handles_per_member_content_seeds(self):
        # Replica content is seeded per member, so a title's copies can
        # hold different block counts on different members; seed 7
        # produces a source copy shorter than its destination slot
        # (regression: the rebuild read address must clamp into the
        # source video instead of raising).
        config = heal_config(faults=RECOVERING).replace(
            node=short_member(seed=7)
        )
        metrics = run_cluster(config)
        assert metrics.node_titles_rebuilt == 8
        assert metrics.node_titles_unrecoverable == 0
        assert metrics.rejoin_resyncs == 1


class TestDoubleOutage:
    def test_rebuild_saves_strictly_more_sessions(self):
        _, unhealed = run_cached(
            heal_config(faults=DOUBLE, self_heal=SelfHealSpec())
        )
        _, healed = run_cached(heal_config(faults=DOUBLE))
        assert unhealed.lost_sessions > 0
        assert healed.lost_sessions < unhealed.lost_sessions
        assert healed.node_titles_rebuilt == 4

    def test_rebuilt_copies_enter_routing(self):
        cluster, _ = run_cached(heal_config(faults=DOUBLE))
        # The titles hosted only on the doomed pair as built now also
        # live on node 0, so the double outage left them served.
        for title in (1, 4, 7, 10):
            assert 0 in cluster.placement.nodes_for(title)


class TestPartitionedRebuild:
    def test_no_surviving_source_counts_unrecoverable(self):
        _, metrics = run_cached(
            heal_config(placement=PlacementSpec("partitioned"))
        )
        assert metrics.node_titles_rebuilt == 0
        assert metrics.node_titles_unrecoverable == 8
        assert metrics.replication_restore_s == 0.0


class TestRejoin:
    def test_recovered_member_resyncs_before_reentering(self):
        cluster, metrics = run_cached(heal_config(faults=RECOVERING))
        assert metrics.rejoin_resyncs == 1
        assert metrics.rejoin_resync_bytes > 0
        assert cluster.node_available(1)
        assert cluster.health.rank(1) == 0

    def test_zero_fraction_keeps_the_instant_flip(self):
        spec = SelfHealSpec(rebuild=True, rejoin_resync_fraction=0.0)
        cluster, metrics = run_cached(
            heal_config(faults=RECOVERING, self_heal=spec)
        )
        assert metrics.rejoin_resyncs == 0
        assert metrics.rejoin_resync_bytes == 0
        assert cluster.node_available(1)


class TestSpill:
    def test_placement_aware_admission_spills_instead_of_balking(self):
        # An overload rate: the routed member's queue is full while
        # another replica holder still has room, which is the one
        # situation the spill path exists for.
        spec = SelfHealSpec(rebuild=True, placement_aware_admission=True)
        _, spilling = run_cached(
            heal_config(faults=DOUBLE, self_heal=spec, rate_per_s=16.0)
        )
        _, plain = run_cached(heal_config(faults=DOUBLE, rate_per_s=16.0))
        assert spilling.spilled_sessions > 0
        assert plain.spilled_sessions == 0


class TestTracing:
    def test_rebuild_and_rejoin_events_are_recorded(self):
        cluster = SpiffiCluster(heal_config(faults=RECOVERING))
        recorder = cluster.enable_cluster_tracing()
        cluster.run()
        kinds = {event.kind for event in recorder.events()}
        assert trace_events.CLUSTER_REBUILD_START in kinds
        assert trace_events.CLUSTER_REBUILD_TITLE in kinds
        assert trace_events.CLUSTER_REBUILD_END in kinds
        assert trace_events.CLUSTER_REJOIN_START in kinds
        assert trace_events.CLUSTER_REJOIN_END in kinds


class TestDeterminism:
    def test_healing_runs_reproduce_bit_identically(self):
        config = heal_config(faults=DOUBLE)
        first = run_cluster(config)
        second = run_cluster(config)
        assert first.deterministic_dict() == second.deterministic_dict()
