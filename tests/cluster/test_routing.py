"""Router policies: static behaviour and whole-run determinism.

The acceptance bar for the cluster front door is that the session→node
assignment is a pure function of the config: two fresh clusters built
from the same ``ClusterConfig`` must produce identical routing logs,
per policy, and a cluster run must be bit-identical under the serial
executor and the process pool (same seed + same ``--jobs``).
"""

import pytest

from repro.cluster import PlacementSpec, RouterSpec, SpiffiCluster, router_names
from repro.cluster.routing import register_router
from repro.experiments.runner import (
    ProcessExecutor,
    Runner,
    RunRequest,
    SerialExecutor,
)
from tests.cluster.conftest import small_cluster

POLICIES = ("least-loaded", "consistent-hash", "locality")


class TestSpec:
    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown router"):
            RouterSpec("round-robin")

    def test_virtual_points_validated(self):
        with pytest.raises(ValueError, match="virtual_points"):
            RouterSpec("consistent-hash", virtual_points=0)

    def test_registry(self):
        assert set(POLICIES) <= set(router_names())
        with pytest.raises(ValueError, match="non-empty string"):
            register_router("", lambda spec, cluster: None)


class TestStaticRouting:
    """Routing decisions on a built (never run) cluster."""

    def build(self, policy: str, placement: str = "replicated") -> SpiffiCluster:
        return SpiffiCluster(
            small_cluster(
                placement=PlacementSpec(placement), routing=RouterSpec(policy)
            )
        )

    def test_least_loaded_breaks_ties_by_index(self):
        cluster = self.build("least-loaded")
        assert cluster.router.route(0) == 0

    def test_least_loaded_prefers_the_idle_member(self):
        cluster = self.build("least-loaded")
        cluster.members[0].admission.active = 5
        assert cluster.router.route(0) == 1

    def test_locality_serves_from_the_primary(self):
        cluster = self.build("locality")
        for title in range(cluster.placement.catalog_size):
            assert cluster.router.route(title) == cluster.placement.primary(title)

    def test_locality_falls_back_when_primary_is_down(self):
        cluster = self.build("locality")
        title = next(
            t
            for t in range(cluster.placement.catalog_size)
            if cluster.placement.primary(t) == 0
        )
        cluster._fail_node(0)
        assert cluster.router.route(title) == 1

    def test_consistent_hash_is_sticky(self):
        cluster = self.build("consistent-hash")
        first = [cluster.router.route(t) for t in range(4)]
        assert first == [cluster.router.route(t) for t in range(4)]
        assert set(first) <= {0, 1}

    def test_consistent_hash_skips_dead_members(self):
        cluster = self.build("consistent-hash")
        cluster._fail_node(0)
        for title in range(4):
            assert cluster.router.route(title) == 1

    def test_no_surviving_host_routes_none(self):
        cluster = self.build("least-loaded")
        cluster._fail_node(0)
        cluster._fail_node(1)
        assert cluster.router.route(0) is None

    def test_partitioned_placement_constrains_candidates(self):
        cluster = self.build("least-loaded", placement="partitioned")
        per = cluster.config.node.video_count
        assert cluster.router.route(0) == 0
        assert cluster.router.route(per) == 1


class TestDeterminism:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_assignments_identical_across_fresh_builds(self, policy):
        config = small_cluster(routing=RouterSpec(policy))

        def run_once():
            cluster = SpiffiCluster(config)
            cluster.run()
            return list(cluster.workload.assignments)

        first, second = run_once(), run_once()
        assert first, "the workload routed no sessions"
        assert first == second
        assert {node for _, _, node in first} == {0, 1}

    def test_run_identical_under_serial_and_process_executors(self):
        config = small_cluster()

        def run_with(executor):
            runner = Runner(executor=executor, cache=None)
            try:
                outcome = runner.run_batch([RunRequest(config)])[0]
            finally:
                executor.close()
            assert not outcome.failed, outcome.error
            return outcome.metrics

        serial = run_with(SerialExecutor())
        pooled = run_with(ProcessExecutor(jobs=2))
        assert serial.deterministic_dict() == pooled.deterministic_dict()
