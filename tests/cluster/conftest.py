"""Shared fixtures for the cluster tests: a small, fast 2-node shape."""

from repro.cluster import ClusterConfig, PlacementSpec, RouterSpec
from repro.core.config import MB, SpiffiConfig
from repro.workload.spec import ArrivalSpec


def small_node(**overrides) -> SpiffiConfig:
    """One small disk-bound member: 2 disks, 4 videos, short windows."""
    base = dict(
        nodes=1,
        disks_per_node=2,
        terminals=1,  # ignored when the cluster workload is open
        videos_per_disk=2,
        video_length_s=600.0,
        server_memory_bytes=64 * MB,
        zipf_skew=0.2,
        start_spread_s=2.0,
        warmup_grace_s=4.0,
        measure_s=60.0,
        seed=7,
    )
    base.update(overrides)
    return SpiffiConfig(**base)


def open_workload(rate_per_s: float = 0.5, **overrides) -> ArrivalSpec:
    base = dict(
        process="poisson",
        rate_per_s=rate_per_s,
        mean_view_duration_s=30.0,
        queue_limit=8,
        mean_patience_s=10.0,
        startup_slo_s=10.0,
    )
    base.update(overrides)
    return ArrivalSpec(**base)


def small_cluster(nodes: int = 2, **overrides) -> ClusterConfig:
    base = dict(
        node=small_node(),
        nodes=nodes,
        placement=PlacementSpec("replicated"),
        routing=RouterSpec("least-loaded"),
        workload=open_workload(),
    )
    base.update(overrides)
    return ClusterConfig(**base)
