"""Cross-node failover: scripted outages reroute sessions to replicas.

The scenario throughout: 2 members, node 1 drops 30 simulated seconds
into the run (inside the measurement window) and — unless the test says
otherwise — rejoins 20 seconds later.  Under ``replicated`` placement
every title keeps a surviving host, so sessions migrate and nothing is
lost; under ``partitioned`` placement the dead node's slice of the
catalog has no replica, so its sessions are lost and new arrivals for
those titles balk.
"""

from repro.cluster import PlacementSpec, RouterSpec, SpiffiCluster
from repro.faults.spec import FaultSpec
from tests.cluster.conftest import open_workload, small_cluster

OUTAGE = FaultSpec(
    fail_node_ids=(1,), fail_nodes_at_s=30.0, node_recover_after_s=20.0
)


def failover_cluster(
    placement: str, routing: str, faults: FaultSpec = OUTAGE
) -> SpiffiCluster:
    config = small_cluster(
        placement=PlacementSpec(placement),
        routing=RouterSpec(routing),
        workload=open_workload(rate_per_s=1.0),
        faults=faults,
    )
    return SpiffiCluster(config)


class TestReplicatedFailover:
    def test_outage_migrates_sessions_without_losses(self):
        cluster = failover_cluster("replicated", "least-loaded")
        metrics = cluster.run()
        stats = cluster.workload.stats
        assert cluster.stats.node_outages == 1
        assert cluster.stats.node_recoveries == 1
        assert stats.failed_over > 0
        assert stats.lost == 0
        assert metrics.admitted_sessions == stats.admitted
        # Both members served admissions across the window.
        assert stats.routed[0] > 0 and stats.routed[1] > 0

    def test_member_is_healthy_again_after_recovery(self):
        cluster = failover_cluster("replicated", "least-loaded")
        cluster.run()
        assert cluster.node_available(1)
        assert cluster.health.rank(1) == 0
        # The outage event was re-armed: a fresh, untriggered event.
        assert not cluster.down_event(1).triggered

    def test_consistent_hash_also_fails_over(self):
        cluster = failover_cluster("replicated", "consistent-hash")
        stats_before = cluster.run()
        stats = cluster.workload.stats
        assert stats.failed_over > 0
        assert stats.lost == 0
        assert stats_before.completed_sessions == stats.completed


class TestPartitionedOutage:
    def test_unreplicated_titles_are_lost(self):
        cluster = failover_cluster("partitioned", "locality")
        cluster.run()
        stats = cluster.workload.stats
        # The dead node's slice has no replica: its in-flight sessions
        # are lost, and each loss was preceded by a failover attempt.
        assert stats.lost > 0
        assert stats.failed_over >= stats.lost


class TestPermanentOutage:
    def test_no_recovery_script_leaves_the_node_down(self):
        permanent = FaultSpec(fail_node_ids=(1,), fail_nodes_at_s=30.0)
        cluster = failover_cluster(
            "replicated", "least-loaded", faults=permanent
        )
        cluster.run()
        assert cluster.stats.node_outages == 1
        assert cluster.stats.node_recoveries == 0
        assert not cluster.node_available(1)
        assert cluster.down_event(1).triggered
