"""The degenerate cluster is the standalone system, bit for bit.

A 1-node ``partitioned`` cluster with a closed workload must reproduce
the single-system golden digests exactly — same metrics digest, same
event count — under direct execution, the serial executor (``--jobs
1``), and the process pool (``--jobs 4``).  This is what licenses the
``SpiffiSystem`` → ``SpiffiNode`` + cluster refactor: the cluster
wrapper adds no simulation events and draws no randomness.
"""

from repro.cluster import ClusterConfig, run_cluster
from repro.experiments.results import config_digest
from repro.experiments.runner import (
    ProcessExecutor,
    Runner,
    RunRequest,
    SerialExecutor,
)
from tests.sim.test_golden_digest import (
    GOLDEN_CONFIG_DIGEST,
    GOLDEN_EVENTS_PROCESSED,
    GOLDEN_METRICS_DIGEST,
    metrics_digest,
    midsize_config,
)


def one_node_cluster() -> ClusterConfig:
    return ClusterConfig(node=midsize_config())


def run_with(executor):
    runner = Runner(executor=executor, cache=None)
    try:
        outcome = runner.run_batch([RunRequest(one_node_cluster())])[0]
    finally:
        executor.close()
    assert not outcome.failed, outcome.error
    return outcome.metrics


def test_identity_direct():
    metrics = run_cluster(one_node_cluster())
    assert metrics.events_processed == GOLDEN_EVENTS_PROCESSED
    assert metrics_digest(metrics) == GOLDEN_METRICS_DIGEST


def test_identity_jobs_1():
    metrics = run_with(SerialExecutor())
    assert metrics.events_processed == GOLDEN_EVENTS_PROCESSED
    assert metrics_digest(metrics) == GOLDEN_METRICS_DIGEST


def test_identity_jobs_4():
    metrics = run_with(ProcessExecutor(jobs=4))
    assert metrics.events_processed == GOLDEN_EVENTS_PROCESSED
    assert metrics_digest(metrics) == GOLDEN_METRICS_DIGEST


def test_cluster_config_digest_is_not_the_member_digest():
    # Identical *results*, distinct cache identity: a cluster run must
    # never collide with the standalone run in the run cache.
    assert config_digest(one_node_cluster()) != GOLDEN_CONFIG_DIGEST
