"""The degenerate cluster is the standalone system, bit for bit.

A 1-node ``partitioned`` cluster with a closed workload must reproduce
the single-system golden digests exactly — same metrics digest, same
event count — under direct execution, the serial executor (``--jobs
1``), and the process pool (``--jobs 4``).  This is what licenses the
``SpiffiSystem`` → ``SpiffiNode`` + cluster refactor: the cluster
wrapper adds no simulation events and draws no randomness.
"""

import pytest

from repro.cluster import ClusterConfig, PlacementSpec, RouterSpec, run_cluster
from repro.experiments.results import config_digest
from repro.experiments.runner import (
    ProcessExecutor,
    Runner,
    RunRequest,
    SerialExecutor,
)
from repro.sim import SimSpec, event_queue_names
from repro.workload.spec import ArrivalSpec
from tests.sim.test_golden_digest import (
    GOLDEN_CONFIG_DIGEST,
    GOLDEN_EVENTS_PROCESSED,
    GOLDEN_METRICS_DIGEST,
    metrics_digest,
    midsize_config,
)


def one_node_cluster() -> ClusterConfig:
    return ClusterConfig(node=midsize_config())


def run_with(executor):
    runner = Runner(executor=executor, cache=None)
    try:
        outcome = runner.run_batch([RunRequest(one_node_cluster())])[0]
    finally:
        executor.close()
    assert not outcome.failed, outcome.error
    return outcome.metrics


def test_identity_direct():
    metrics = run_cluster(one_node_cluster())
    assert metrics.events_processed == GOLDEN_EVENTS_PROCESSED
    assert metrics_digest(metrics) == GOLDEN_METRICS_DIGEST


def test_identity_jobs_1():
    metrics = run_with(SerialExecutor())
    assert metrics.events_processed == GOLDEN_EVENTS_PROCESSED
    assert metrics_digest(metrics) == GOLDEN_METRICS_DIGEST


def test_identity_jobs_4():
    metrics = run_with(ProcessExecutor(jobs=4))
    assert metrics.events_processed == GOLDEN_EVENTS_PROCESSED
    assert metrics_digest(metrics) == GOLDEN_METRICS_DIGEST


def test_cluster_config_digest_is_not_the_member_digest():
    # Identical *results*, distinct cache identity: a cluster run must
    # never collide with the standalone run in the run cache.
    assert config_digest(one_node_cluster()) != GOLDEN_CONFIG_DIGEST


# ----------------------------------------------------------------------
# Timer-storm-heavy cluster: the event-queue seam at cluster scale.
# An open 3-node cluster where most kernel events are timers — arrival
# draws, short patience clocks, view-duration churn — i.e. exactly the
# event mix the calendar backend exists for.  Both backends must
# reproduce the digests below bit-for-bit (recorded under the heap
# default; re-record with ``print_storm_current()`` after intentional
# behaviour changes).
# ----------------------------------------------------------------------
GOLDEN_STORM_CONFIG_DIGEST = (
    "f493c8b73aceee6ccdd63473a92ae9708cf34ad588d5413c5352013db176d28b"
)
GOLDEN_STORM_METRICS_DIGEST = (
    "9ebe95656e4017bc4bc466d40fc25aa8e68bcdfa83616550a41a0f8f9d64450a"
)
GOLDEN_STORM_EVENTS_PROCESSED = 46104


def storm_cluster(backend: str = "heap") -> ClusterConfig:
    node = midsize_config().replace(
        terminals=1,  # ignored: the open cluster workload owns sessions
        measure_s=45.0,
        sim=SimSpec(event_queue=backend),
    )
    return ClusterConfig(
        node=node,
        nodes=3,
        placement=PlacementSpec("replicated"),
        routing=RouterSpec("least-loaded"),
        workload=ArrivalSpec(
            process="poisson",
            rate_per_s=3.0,
            mean_view_duration_s=30.0,
            queue_limit=12,
            mean_patience_s=2.0,
        ),
    )


@pytest.mark.parametrize("backend", event_queue_names())
def test_storm_cluster_identity_across_backends(backend):
    assert config_digest(storm_cluster(backend)) == GOLDEN_STORM_CONFIG_DIGEST
    metrics = run_cluster(storm_cluster(backend))
    assert metrics.events_processed == GOLDEN_STORM_EVENTS_PROCESSED
    assert metrics_digest(metrics) == GOLDEN_STORM_METRICS_DIGEST


@pytest.mark.parametrize("backend", event_queue_names())
def test_storm_cluster_identity_jobs_4(backend):
    runner = Runner(executor=ProcessExecutor(jobs=4), cache=None)
    try:
        outcome = runner.run_batch([RunRequest(storm_cluster(backend))])[0]
    finally:
        runner.executor.close()
    assert not outcome.failed, outcome.error
    assert outcome.metrics.events_processed == GOLDEN_STORM_EVENTS_PROCESSED
    assert metrics_digest(outcome.metrics) == GOLDEN_STORM_METRICS_DIGEST


def print_storm_current() -> None:  # pragma: no cover - re-recording helper
    metrics = run_cluster(storm_cluster())
    print("config digest: ", config_digest(storm_cluster()))
    print("metrics digest:", metrics_digest(metrics))
    print("events:        ", metrics.events_processed)
