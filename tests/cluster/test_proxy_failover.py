"""The edge proxy front door across node outages.

The proxy tier sits in front of the whole cluster, so a member outage
must not corrupt its accounting: every startup request is still exactly
one hit or one miss, sessions that lose their member fail over behind
the unchanged front door, and a healed (re-replicated) copy streams
through the proxy under its global title id like any construction copy.
"""

from repro.cluster import PlacementSpec, RouterSpec, SelfHealSpec, SpiffiCluster
from repro.core.config import MB
from repro.faults.spec import FaultSpec
from repro.proxy import ProxySpec
from tests.cluster.conftest import open_workload, small_cluster
from tests.cluster.test_failover import OUTAGE
from tests.cluster.test_selfheal import DOUBLE, heal_config

FRONT_DOOR = ProxySpec(prefix_s=20.0, memory_bytes=48 * MB)


def proxied_cluster(faults: FaultSpec = OUTAGE) -> SpiffiCluster:
    config = small_cluster(
        placement=PlacementSpec("replicated"),
        routing=RouterSpec("least-loaded"),
        workload=open_workload(rate_per_s=1.0),
        faults=faults,
        proxy=FRONT_DOOR,
    )
    return SpiffiCluster(config)


class TestProxyAcrossFailover:
    def test_accounting_survives_the_outage(self):
        cluster = proxied_cluster()
        metrics = cluster.run()
        stats = cluster.proxy_runtime.stats
        assert cluster.workload.stats.failed_over > 0
        assert stats.requests > 0
        assert stats.hits + stats.misses == stats.requests
        assert metrics.proxy_requests == stats.requests
        assert metrics.proxy_hits == stats.hits
        assert metrics.proxy_misses == stats.misses

    def test_failover_keeps_sessions_behind_the_front_door(self):
        cluster = proxied_cluster()
        metrics = cluster.run()
        stats = cluster.workload.stats
        assert stats.lost == 0
        assert metrics.failed_over_sessions == stats.failed_over
        # Both members carried admissions despite the mid-run outage.
        assert stats.routed[0] > 0 and stats.routed[1] > 0

    def test_permanent_outage_also_balances(self):
        permanent = FaultSpec(fail_node_ids=(1,), fail_nodes_at_s=30.0)
        cluster = proxied_cluster(faults=permanent)
        cluster.run()
        stats = cluster.proxy_runtime.stats
        assert stats.hits + stats.misses == stats.requests
        assert not cluster.node_available(1)

    def test_runs_are_deterministic(self):
        first = proxied_cluster().run()
        second = proxied_cluster().run()
        assert first.deterministic_dict() == second.deterministic_dict()


class TestProxyOverHealedCatalog:
    def heal_with_proxy(self) -> SpiffiCluster:
        # Short-video catalog: 20 s prefix covers whole 4 s titles, so
        # every startup block the proxy holds is a hit.
        config = heal_config(faults=DOUBLE).replace(
            proxy=ProxySpec(prefix_s=2.0, memory_bytes=48 * MB)
        )
        return SpiffiCluster(config)

    def test_rebuilt_titles_stream_through_the_proxy(self):
        cluster = self.heal_with_proxy()
        metrics = cluster.run()
        stats = cluster.proxy_runtime.stats
        assert metrics.node_titles_rebuilt == 4
        assert stats.requests > 0
        assert stats.hits + stats.misses == stats.requests

    def test_spare_slots_map_back_to_global_titles(self):
        cluster = self.heal_with_proxy()
        for item in [
            work
            for per_dead in cluster.heal_plan.per_dead.values()
            for work in per_dead
        ]:
            view = cluster.members[item.dest].proxy
            assert view._to_global[item.dest_local] == item.title

    def test_default_spec_builds_no_front_door(self):
        cluster = SpiffiCluster(heal_config(faults=DOUBLE))
        assert cluster.proxy_runtime is None
        metrics = cluster.run()
        assert metrics.proxy_requests == 0
        assert "proxy_requests" not in metrics.deterministic_dict()
