"""ClusterConfig validation, derived quantities, and cache identity."""

import pytest

from repro.cluster import ClusterConfig, PlacementSpec, RouterSpec
from repro.core.config import SpiffiConfig
from repro.experiments.results import config_digest
from repro.faults.spec import FaultSpec
from repro.workload.spec import ArrivalSpec
from tests.cluster.conftest import open_workload, small_cluster, small_node


class TestValidation:
    def test_defaults_are_the_degenerate_single_node(self):
        config = ClusterConfig()
        assert config.nodes == 1
        assert config.placement.name == "partitioned"
        assert config.routing.name == "least-loaded"
        assert not config.workload.enabled

    def test_component_types_enforced(self):
        with pytest.raises(TypeError, match="SpiffiConfig"):
            ClusterConfig(node="midsize")
        with pytest.raises(TypeError, match="PlacementSpec"):
            ClusterConfig(placement="replicated")
        with pytest.raises(TypeError, match="RouterSpec"):
            ClusterConfig(routing="locality")
        with pytest.raises(TypeError, match="ArrivalSpec"):
            ClusterConfig(workload="poisson")
        with pytest.raises(TypeError, match="FaultSpec"):
            ClusterConfig(faults="none")

    def test_need_at_least_one_node(self):
        with pytest.raises(ValueError, match="at least one node"):
            small_cluster(nodes=0)

    def test_multi_node_requires_open_workload(self):
        with pytest.raises(ValueError, match="open cluster workload"):
            ClusterConfig(node=small_node(), nodes=2)

    def test_member_workload_rejected(self):
        member = small_node(workload=open_workload())
        with pytest.raises(ValueError, match="cluster owns the workload"):
            small_cluster(node=member)

    def test_disk_faults_rejected_at_cluster_level(self):
        with pytest.raises(ValueError, match="node outages"):
            small_cluster(faults=FaultSpec(disk_fault_rate_per_hour=6.0))

    def test_fail_node_ids_must_be_in_range(self):
        faults = FaultSpec(fail_node_ids=(2,), fail_nodes_at_s=10.0)
        with pytest.raises(ValueError, match="out of range"):
            small_cluster(nodes=2, faults=faults)

    def test_at_least_one_member_must_survive(self):
        faults = FaultSpec(fail_node_ids=(0, 1), fail_nodes_at_s=10.0)
        with pytest.raises(ValueError, match="survive"):
            small_cluster(nodes=2, faults=faults)

    def test_placement_shape_validated_at_config_time(self):
        # The 2x4-title catalog cannot hold a 100-title hotset; the
        # error must surface when the config is built, not at run time.
        hot = PlacementSpec("hybrid-hot-replicated", hot_titles=100)
        with pytest.raises(ValueError, match="hot_titles"):
            small_cluster(placement=hot)


class TestDerived:
    def test_seed_adopts_member_seed(self):
        assert small_cluster().seed == small_node().seed
        assert small_cluster(seed=99).seed == 99

    def test_catalog_size_follows_placement(self):
        partitioned = small_cluster(
            placement=PlacementSpec("partitioned"),
            routing=RouterSpec("locality"),
        )
        replicated = small_cluster()
        per_node = small_node().video_count
        assert partitioned.catalog_size == 2 * per_node
        assert replicated.catalog_size == per_node

    def test_timing_mirrors_the_member(self):
        config = small_cluster()
        node = config.node
        assert config.measure_s == node.measure_s
        assert config.warmup_s == node.warmup_s
        assert config.total_sim_time_s == node.total_sim_time_s

    def test_replace(self):
        config = small_cluster()
        bumped = config.replace(nodes=4)
        assert bumped.nodes == 4
        assert config.nodes == 2  # original untouched

    def test_describe_and_label(self):
        config = small_cluster()
        assert "2-node cluster" in config.describe()
        assert config.label() == "2n/replicated/least-loaded"


class TestCacheIdentity:
    def test_cache_dict_is_namespaced(self):
        payload = small_cluster().to_cache_dict()
        assert set(payload) == {"cluster"}
        assert payload["cluster"]["nodes"] == 2

    def test_digest_distinct_from_member_digest(self):
        config = small_cluster()
        assert config_digest(config) != config_digest(config.node)

    def test_digest_sensitive_to_cluster_fields(self):
        base = small_cluster()
        assert config_digest(base) != config_digest(
            base.replace(routing=RouterSpec("consistent-hash"))
        )
        assert config_digest(base) != config_digest(base.replace(nodes=3))
