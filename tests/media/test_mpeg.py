"""Tests for the MPEG frame model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.media import FRAME_B, FRAME_I, FRAME_P, GOP_PATTERN, FrameSequence, MpegProfile


class TestMpegProfile:
    def test_gop_frequency_ratio_is_1_4_10(self):
        pattern = np.asarray(GOP_PATTERN)
        assert (pattern == FRAME_I).sum() == 1
        assert (pattern == FRAME_P).sum() == 4
        assert (pattern == FRAME_B).sum() == 10

    def test_mean_frame_bytes_matches_bit_rate(self):
        profile = MpegProfile()
        # 4 Mbit/s at 30 fps.
        assert profile.mean_frame_bytes == pytest.approx(4e6 / 8 / 30)

    def test_type_means_honour_both_ratios(self):
        profile = MpegProfile()
        mean_i, mean_p, mean_b = profile.mean_type_bytes()
        assert mean_i / mean_b == pytest.approx(5.0)  # 10:2
        assert mean_p / mean_b == pytest.approx(2.5)  # 5:2
        pattern_mean = (1 * mean_i + 4 * mean_p + 10 * mean_b) / 15
        assert pattern_mean == pytest.approx(profile.mean_frame_bytes)


class TestFrameSequence:
    def make(self, duration=10.0, seed=0):
        return FrameSequence(MpegProfile(), duration, seed)

    def test_frame_count(self):
        seq = self.make(duration=10.0)
        assert seq.frame_count == 300

    def test_same_seed_same_sequence(self):
        a, b = self.make(seed=5), self.make(seed=5)
        assert np.array_equal(a.sizes, b.sizes)

    def test_different_seed_different_sizes(self):
        assert not np.array_equal(self.make(seed=1).sizes, self.make(seed=2).sizes)

    def test_total_bytes_near_bit_rate(self):
        seq = self.make(duration=600.0)
        expected = 4e6 / 8 * 600
        assert seq.total_bytes == pytest.approx(expected, rel=0.05)

    def test_cumulative_strictly_increasing(self):
        seq = self.make()
        assert (np.diff(seq.cumulative) > 0).all()
        assert seq.cumulative[0] == 0
        assert seq.cumulative[-1] == seq.total_bytes

    def test_frame_of_byte_boundaries(self):
        seq = self.make()
        assert seq.frame_of_byte(0) == 0
        first = int(seq.sizes[0])
        assert seq.frame_of_byte(first - 1) == 0
        assert seq.frame_of_byte(first) == 1
        assert seq.frame_of_byte(seq.total_bytes - 1) == seq.frame_count - 1

    def test_frame_of_byte_out_of_range(self):
        seq = self.make()
        with pytest.raises(ValueError):
            seq.frame_of_byte(-1)
        with pytest.raises(ValueError):
            seq.frame_of_byte(seq.total_bytes)

    def test_frames_displayable(self):
        seq = self.make()
        assert seq.frames_displayable(0) == 0
        assert seq.frames_displayable(int(seq.sizes[0]) - 1) == 0
        assert seq.frames_displayable(int(seq.sizes[0])) == 1
        assert seq.frames_displayable(seq.total_bytes) == seq.frame_count

    def test_block_count(self):
        seq = self.make()
        block = 64 * 1024
        assert seq.block_count(block) == -(-seq.total_bytes // block)

    def test_first_frames_of_blocks_contains_block_start(self):
        seq = self.make()
        block = 64 * 1024
        first = seq.first_frames_of_blocks(block)
        for k in (0, 1, len(first) // 2, len(first) - 1):
            frame = int(first[k])
            start = k * block
            assert seq.cumulative[frame] <= start < seq.cumulative[frame + 1]

    def test_last_frames_of_blocks_contains_block_end(self):
        seq = self.make()
        block = 64 * 1024
        last = seq.last_frames_of_blocks(block)
        for k in (0, 1, len(last) - 1):
            frame = int(last[k])
            end = min((k + 1) * block, seq.total_bytes) - 1
            assert seq.cumulative[frame] <= end < seq.cumulative[frame + 1]

    def test_first_last_frames_ordered(self):
        seq = self.make()
        block = 64 * 1024
        first = seq.first_frames_of_blocks(block)
        last = seq.last_frames_of_blocks(block)
        assert (first <= last).all()
        # Consecutive blocks overlap by at most one (straddling) frame.
        assert (first[1:] >= last[:-1]).all()

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            self.make(duration=0)

    @given(
        seed=st.integers(min_value=0, max_value=1000),
        block_kb=st.sampled_from([16, 64, 128, 512]),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_block_frame_maps_consistent(self, seed, block_kb):
        seq = FrameSequence(MpegProfile(), 5.0, seed)
        block = block_kb * 1024
        first = seq.first_frames_of_blocks(block)
        last = seq.last_frames_of_blocks(block)
        count = seq.block_count(block)
        assert len(first) == len(last) == count
        assert first[0] == 0
        assert last[-1] == seq.frame_count - 1
        assert (np.diff(first) >= 0).all()
        assert (np.diff(last) >= 0).all()
