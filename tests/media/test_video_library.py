"""Tests for Video, BlockSchedule, VideoLibrary, and access models."""

import pytest

from repro.media import (
    UniformAccess,
    VideoLibrary,
    ZipfianAccess,
    clear_sequence_cache,
    make_access_model,
)
from repro.sim import RandomSource

BLOCK = 64 * 1024


@pytest.fixture()
def library():
    return VideoLibrary(video_count=4, duration_s=10.0, seed=1)


class TestVideo:
    def test_schedule_cached(self, library):
        video = library[0]
        assert video.schedule(BLOCK) is video.schedule(BLOCK)

    def test_schedule_per_block_size(self, library):
        video = library[0]
        assert video.schedule(BLOCK) is not video.schedule(2 * BLOCK)

    def test_duration(self, library):
        assert library[0].duration_s == pytest.approx(10.0)


class TestBlockSchedule:
    def test_block_bytes_full_and_tail(self, library):
        schedule = library[0].schedule(BLOCK)
        assert schedule.block_bytes(0) == BLOCK
        tail = schedule.block_bytes(schedule.block_count - 1)
        assert 0 < tail <= BLOCK
        total = sum(schedule.block_bytes(k) for k in range(schedule.block_count))
        assert total == library[0].total_bytes

    def test_block_bytes_bounds(self, library):
        schedule = library[0].schedule(BLOCK)
        with pytest.raises(ValueError):
            schedule.block_bytes(-1)
        with pytest.raises(ValueError):
            schedule.block_bytes(schedule.block_count)

    def test_delivered_bytes_caps_at_total(self, library):
        schedule = library[0].schedule(BLOCK)
        assert schedule.delivered_bytes(1) == BLOCK
        assert (
            schedule.delivered_bytes(schedule.block_count + 5)
            == library[0].total_bytes
        )


class TestVideoLibrary:
    def test_count_and_ids(self, library):
        assert len(library) == 4
        assert [video.video_id for video in library] == [0, 1, 2, 3]

    def test_videos_differ(self, library):
        assert library[0].total_bytes != library[1].total_bytes

    def test_sequences_memoised_across_libraries(self):
        a = VideoLibrary(2, 10.0, seed=9)
        b = VideoLibrary(2, 10.0, seed=9)
        assert a[0].sequence is b[0].sequence

    def test_cache_clear(self):
        a = VideoLibrary(1, 10.0, seed=9)
        clear_sequence_cache()
        b = VideoLibrary(1, 10.0, seed=9)
        assert a[0].sequence is not b[0].sequence

    def test_total_bytes(self, library):
        assert library.total_bytes == sum(v.total_bytes for v in library)

    def test_validation(self):
        with pytest.raises(ValueError):
            VideoLibrary(0, 10.0)


class TestAccessModels:
    def test_factory(self):
        assert isinstance(make_access_model("zipf", 8, 1.0), ZipfianAccess)
        assert isinstance(make_access_model("uniform", 8), UniformAccess)
        with pytest.raises(ValueError):
            make_access_model("nope", 8)

    def test_zipf_prefers_low_ranks(self):
        bound = ZipfianAccess(16, 1.0).bind(RandomSource(4))
        counts = [0] * 16
        for _ in range(20000):
            counts[bound.select()] += 1
        assert counts[0] > counts[7] > counts[15]

    def test_uniform_roughly_even(self):
        bound = UniformAccess(4).bind(RandomSource(4))
        counts = [0] * 4
        n = 20000
        for _ in range(n):
            counts[bound.select()] += 1
        for count in counts:
            assert count / n == pytest.approx(0.25, abs=0.02)

    def test_weights_align_with_figure8(self):
        # Figure 8: with z=1 over 64 videos, rank 1 gets ~21% of accesses.
        weights = ZipfianAccess(64, 1.0).weights()
        assert weights[0] == pytest.approx(0.21, abs=0.01)
