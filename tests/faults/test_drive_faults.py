"""Fault hooks on the drive and bus models."""

import pytest

from repro.netsim.bus import NetworkBus, NetworkParameters
from repro.sched import FcfsScheduler
from repro.sim import Environment, RandomSource
from repro.storage import DiskDrive, DiskGeometry, DiskRequest, DriveParameters

CYL = DriveParameters().cylinder_bytes


def make_drive(env):
    params = DriveParameters()
    geometry = DiskGeometry(params.cylinder_bytes, 100 * params.cylinder_bytes)
    return DiskDrive(env, 0, params, geometry, FcfsScheduler(), RandomSource(1))


def timed_read(env, drive, offset=0, size=128 * 1024):
    request = DiskRequest(env, byte_offset=offset, size=size,
                          cylinder=offset // CYL)
    start = env.now
    drive.submit(request)
    env.run(until=request.done)
    return request, env.now - start


def sequential_reader(env, drive):
    """Reads continue where the last one ended: pure transfer time,
    no (randomised) positioning — so multipliers are exact."""
    offset = 0

    def read():
        nonlocal offset
        _, took = timed_read(env, drive, offset=offset)
        offset += 128 * 1024
        return took

    read()  # prime head position
    return read


class TestSlowdown:
    def test_slowdown_multiplies_service_time(self):
        env = Environment()
        drive = make_drive(env)
        read = sequential_reader(env, drive)
        normal = read()
        drive.add_slowdown(4.0)
        slowed = read()
        assert slowed == pytest.approx(4.0 * normal)
        drive.remove_slowdown(4.0)
        recovered = read()
        assert recovered == pytest.approx(normal)

    def test_overlapping_slowdowns_compound(self):
        env = Environment()
        drive = make_drive(env)
        read = sequential_reader(env, drive)
        normal = read()
        drive.add_slowdown(2.0)
        drive.add_slowdown(3.0)
        slowed = read()
        assert slowed == pytest.approx(6.0 * normal)

    def test_multiplier_must_not_speed_up(self):
        env = Environment()
        drive = make_drive(env)
        with pytest.raises(ValueError):
            drive.add_slowdown(0.5)


class TestOutage:
    def test_outage_stalls_service_until_it_ends(self):
        env = Environment()
        drive = make_drive(env)
        drive.begin_outage()
        assert drive.in_outage
        request = DiskRequest(env, byte_offset=0, size=512 * 1024, cylinder=0)
        drive.submit(request)

        def ender(env):
            yield env.timeout(5.0)
            drive.end_outage()

        env.process(ender(env))
        env.run(until=request.done)
        assert not drive.in_outage
        assert env.now >= 5.0

    def test_nested_outages(self):
        env = Environment()
        drive = make_drive(env)
        drive.begin_outage()
        drive.begin_outage()
        drive.end_outage()
        assert drive.in_outage
        drive.end_outage()
        assert not drive.in_outage


class TestPermanentFailure:
    def test_failed_drive_fails_requests_immediately(self):
        env = Environment()
        drive = make_drive(env)
        drive.fail_permanently()
        request = DiskRequest(env, byte_offset=0, size=512 * 1024, cylinder=0)
        drive.submit(request)
        env.run(until=request.done)
        assert request.failed
        assert env.now == 0.0

    def test_failure_flushes_queued_requests(self):
        env = Environment()
        drive = make_drive(env)
        slow = DiskRequest(env, byte_offset=0, size=512 * 1024, cylinder=0)
        queued = DiskRequest(env, byte_offset=90 * CYL, size=512 * 1024, cylinder=90)
        drive.submit(slow)
        drive.submit(queued)

        def failer(env):
            yield env.timeout(0.001)  # mid-service of the first request
            drive.fail_permanently()

        env.process(failer(env))
        env.run(until=queued.done)
        assert queued.failed
        assert len(drive.scheduler) == 0

    def test_failure_during_outage_does_not_deadlock(self):
        env = Environment()
        drive = make_drive(env)
        drive.begin_outage()
        request = DiskRequest(env, byte_offset=0, size=512 * 1024, cylinder=0)
        drive.submit(request)
        drive.fail_permanently()
        env.run(until=request.done)
        assert request.failed


class TestCancelledRequests:
    def test_cancelled_request_is_skipped(self):
        env = Environment()
        drive = make_drive(env)
        first = DiskRequest(env, byte_offset=0, size=512 * 1024, cylinder=0)
        second = DiskRequest(env, byte_offset=90 * CYL, size=512 * 1024, cylinder=90)
        drive.submit(first)
        drive.submit(second)
        second.cancel()
        env.run(until=second.done)
        # The cancelled request completes without being serviced.
        assert drive.reads == 1
        assert second.started_at is None or second.completed_at == second.started_at


class TestNetworkDegradation:
    def test_degradation_multiplies_transit(self):
        env = Environment()
        bus = NetworkBus(env, NetworkParameters())
        normal = NetworkParameters().transit_time(512 * 1024)
        elapsed = []

        def sender(env):
            start = env.now
            yield from bus.transfer(512 * 1024)
            elapsed.append(env.now - start)

        done = env.process(sender(env))
        env.run(until=done)
        assert elapsed[-1] == pytest.approx(normal)
        bus.degrade(8.0)
        assert bus.degraded
        done = env.process(sender(env))
        env.run(until=done)
        assert elapsed[-1] == pytest.approx(8.0 * normal)
        bus.restore(8.0)
        assert not bus.degraded
        done = env.process(sender(env))
        env.run(until=done)
        assert elapsed[-1] == pytest.approx(normal)

    def test_degrade_validates_multiplier(self):
        env = Environment()
        bus = NetworkBus(env, NetworkParameters())
        with pytest.raises(ValueError):
            bus.degrade(0.9)
