"""Tests for the pre-computed fault timetable."""

import math

import pytest

from repro.faults import FaultSpec, build_schedule
from repro.faults.schedule import NETWORK_TARGET
from repro.faults.spec import DISK_FAIL, DISK_OUTAGE, DISK_SLOW, NET_DEGRADE
from repro.sim.rng import RandomSource


def schedule(spec, disks=4, horizon=300.0, seed=11):
    return build_schedule(spec, disks, horizon, RandomSource(seed).spawn("faults"))


class TestDeterminism:
    def test_same_inputs_same_schedule(self):
        spec = FaultSpec(disk_fault_rate_per_hour=240.0, fail_weight=0.5,
                         network_fault_rate_per_hour=60.0)
        assert schedule(spec) == schedule(spec)

    def test_different_seed_different_schedule(self):
        spec = FaultSpec(disk_fault_rate_per_hour=240.0)
        assert schedule(spec, seed=1) != schedule(spec, seed=2)

    def test_per_disk_streams_independent(self):
        # Adding a disk appends that disk's events without perturbing
        # the faults already scheduled for existing disks.
        spec = FaultSpec(disk_fault_rate_per_hour=240.0)
        small = {e for e in schedule(spec, disks=2)}
        large = {e for e in schedule(spec, disks=3)}
        assert small <= large
        assert {e.target for e in large - small} == {2}


class TestShape:
    def test_empty_spec_empty_schedule(self):
        assert schedule(FaultSpec()) == ()

    def test_sorted_by_start_time(self):
        spec = FaultSpec(disk_fault_rate_per_hour=240.0,
                         network_fault_rate_per_hour=120.0)
        events = schedule(spec)
        assert list(events) == sorted(events, key=lambda e: (e.start_s, e.target, e.kind))
        assert all(0.0 <= e.start_s < 300.0 for e in events)

    def test_kinds_follow_weights(self):
        only_slow = schedule(FaultSpec(disk_fault_rate_per_hour=240.0,
                                       slow_weight=1.0, outage_weight=0.0))
        assert {e.kind for e in only_slow} == {DISK_SLOW}
        only_outage = schedule(FaultSpec(disk_fault_rate_per_hour=240.0,
                                         slow_weight=0.0, outage_weight=1.0))
        assert {e.kind for e in only_outage} == {DISK_OUTAGE}

    def test_permanent_failure_ends_disk_stream(self):
        spec = FaultSpec(disk_fault_rate_per_hour=720.0, slow_weight=0.0,
                         outage_weight=0.0, fail_weight=1.0)
        events = schedule(spec, disks=3, horizon=3600.0)
        # Exactly one (permanent) failure per disk, nothing after it.
        assert len(events) == 3
        assert {e.target for e in events} == {0, 1, 2}
        for event in events:
            assert event.kind == DISK_FAIL
            assert event.permanent
            assert math.isinf(event.end_s)

    def test_network_events_target_bus(self):
        spec = FaultSpec(network_fault_rate_per_hour=240.0)
        events = schedule(spec)
        assert events
        assert {e.kind for e in events} == {NET_DEGRADE}
        assert {e.target for e in events} == {NETWORK_TARGET}
        assert all(e.magnitude == spec.network_latency_multiplier for e in events)


class TestArguments:
    def test_bad_disk_count(self):
        with pytest.raises(ValueError):
            build_schedule(FaultSpec(), 0, 100.0, RandomSource(1))

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            build_schedule(FaultSpec(), 4, 0.0, RandomSource(1))
