"""Degraded-mode read path under random outages, across seeds and jobs.

Exercises the full timeout -> retry -> failover chain with a stochastic
outage-heavy fault schedule (not the scripted permanent failure the
other suites use) and pins down that the chain is deterministic under
both the serial and the process-pool executor.
"""

import pytest

from repro import MB, SpiffiConfig
from repro.core.system import SpiffiSystem
from repro.experiments.runner import (
    ProcessExecutor,
    RunRequest,
    Runner,
    SerialExecutor,
)
from repro.faults import FaultSpec
from repro.layout.registry import LayoutSpec
from repro.prefetch.spec import PrefetchSpec
from repro.replication.spec import ReplicationSpec
from repro.telemetry import trace as trace_events

SEEDS = (7, 8, 9)

#: Frequent short outages, no slow-downs, no permanent failures: every
#: fault forces the timeout/retry machinery rather than just stretching
#: service times.
OUTAGE_STORM = FaultSpec(
    disk_fault_rate_per_hour=720.0,
    slow_weight=0.0,
    outage_weight=1.0,
    fail_weight=0.0,
    mean_outage_duration_s=3.0,
    request_timeout_s=0.5,
    max_retries=2,
)


def storm_config(seed):
    return SpiffiConfig(
        nodes=2,
        disks_per_node=2,
        terminals=16,
        videos_per_disk=2,
        video_length_s=600.0,
        server_memory_bytes=256 * MB,
        layout=LayoutSpec("mirrored"),
        replication=ReplicationSpec(factor=2),
        prefetch=PrefetchSpec("none"),
        faults=OUTAGE_STORM,
        start_spread_s=4.0,
        warmup_grace_s=6.0,
        measure_s=30.0,
        seed=seed,
    )


def traced_run(seed):
    system = SpiffiSystem(storm_config(seed))
    recorder = system.enable_fault_tracing()
    system.start()
    system.env.run(until=system.config.total_sim_time_s)
    return recorder


@pytest.fixture(scope="module")
def recorders():
    return {seed: traced_run(seed) for seed in SEEDS}


class TestRetryThenFailoverChain:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_stage_of_the_chain_fires(self, recorders, seed):
        summary = recorders[seed].summary()
        assert summary.get(trace_events.FAULT_RETRY, 0) > 0
        assert summary.get(trace_events.HEALTH_CHANGE, 0) > 0
        assert summary.get(trace_events.FAILOVER_READ, 0) > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_some_failover_was_preceded_by_a_retry_on_that_disk(
        self, recorders, seed
    ):
        """The chain is causal, not coincidental: at least one read
        retried against a disk and then fled it for the replica."""
        events = recorders[seed].events()
        retried_at = {}  # (terminal, disk) -> earliest retry time
        chained = False
        for event in events:
            if event.kind == trace_events.FAULT_RETRY:
                key = (event.fields["terminal"], event.fields["disk"])
                retried_at.setdefault(key, event.time)
            elif event.kind == trace_events.FAILOVER_READ:
                key = (event.fields["terminal"], event.fields["from_disk"])
                if key in retried_at and retried_at[key] <= event.time:
                    chained = True
                    break
        assert chained

    @pytest.mark.parametrize("seed", SEEDS)
    def test_suspect_states_appear_and_recover(self, recorders, seed):
        """Outages drive disks out of HEALTHY and, with no permanent
        failures in the spec, back again."""
        changes = recorders[seed].events(trace_events.HEALTH_CHANGE)
        states = {event.fields["state"] for event in changes}
        assert states >= {"healthy"}
        assert states & {"suspect", "down"}
        assert "failed" not in states


class TestJobsDeterminism:
    def test_serial_and_pool_executors_agree(self):
        requests = [
            RunRequest(storm_config(seed), tag=f"seed {seed}") for seed in SEEDS
        ]
        serial = Runner(SerialExecutor())
        try:
            expected = [
                outcome.metrics.deterministic_dict()
                for outcome in serial.run_batch(requests)
            ]
        finally:
            serial.close()
        pooled = Runner(ProcessExecutor(jobs=4))
        try:
            actual = [
                outcome.metrics.deterministic_dict()
                for outcome in pooled.run_batch(requests)
            ]
        finally:
            pooled.close()
        assert actual == expected
