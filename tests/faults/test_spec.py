"""Tests for FaultSpec validation and identity."""

import dataclasses

import pytest

from repro.faults import FaultSpec


class TestDefaults:
    def test_default_is_disabled(self):
        spec = FaultSpec()
        assert not spec.enabled
        assert spec.disk_fault_rate_per_hour == 0.0
        assert spec.network_fault_rate_per_hour == 0.0

    def test_disk_rate_enables(self):
        assert FaultSpec(disk_fault_rate_per_hour=1.0).enabled

    def test_network_rate_enables(self):
        assert FaultSpec(network_fault_rate_per_hour=1.0).enabled

    def test_label(self):
        assert FaultSpec().label() == "no faults"
        assert "disk" in FaultSpec(disk_fault_rate_per_hour=6.0).label()
        assert "net" in FaultSpec(network_fault_rate_per_hour=2.0).label()


class TestValidation:
    def test_negative_rate(self):
        with pytest.raises(ValueError):
            FaultSpec(disk_fault_rate_per_hour=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(network_fault_rate_per_hour=-1.0)

    def test_zero_total_weight_with_rate(self):
        with pytest.raises(ValueError):
            FaultSpec(
                disk_fault_rate_per_hour=1.0,
                slow_weight=0.0,
                outage_weight=0.0,
                fail_weight=0.0,
            )

    def test_negative_weight(self):
        with pytest.raises(ValueError):
            FaultSpec(slow_weight=-1.0)

    def test_multipliers_must_slow_things_down(self):
        with pytest.raises(ValueError):
            FaultSpec(slow_latency_multiplier=0.5)
        with pytest.raises(ValueError):
            FaultSpec(network_latency_multiplier=0.0)

    def test_nonpositive_durations(self):
        with pytest.raises(ValueError):
            FaultSpec(mean_slow_duration_s=0.0)
        with pytest.raises(ValueError):
            FaultSpec(mean_outage_duration_s=-2.0)

    def test_timeout_and_retries(self):
        with pytest.raises(ValueError):
            FaultSpec(request_timeout_s=0.0)
        with pytest.raises(ValueError):
            FaultSpec(max_retries=-1)
        with pytest.raises(ValueError):
            FaultSpec(failover_penalty_s=-0.1)


class TestNodeOutageScript:
    def test_stagger_must_be_finite_and_nonnegative(self):
        for bad in (-1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError, match="fail_node_stagger_s"):
                FaultSpec(
                    fail_node_ids=(0, 1),
                    fail_nodes_at_s=10.0,
                    fail_node_stagger_s=bad,
                )

    def test_stagger_needs_at_least_two_nodes(self):
        with pytest.raises(ValueError, match="two fail_node_ids"):
            FaultSpec(
                fail_node_ids=(1,),
                fail_nodes_at_s=10.0,
                fail_node_stagger_s=5.0,
            )

    def test_recovery_at_the_stagger_instant_is_refused(self):
        with pytest.raises(ValueError, match="node_recover_after_s"):
            FaultSpec(
                fail_node_ids=(0, 1),
                fail_nodes_at_s=10.0,
                fail_node_stagger_s=5.0,
                node_recover_after_s=5.0,
            )

    def test_recovery_inside_the_stagger_window_is_allowed(self):
        spec = FaultSpec(
            fail_node_ids=(0, 1),
            fail_nodes_at_s=10.0,
            fail_node_stagger_s=5.0,
            node_recover_after_s=4.0,
        )
        assert spec.node_outages_enabled

    def test_recovery_without_outages_is_refused(self):
        with pytest.raises(ValueError, match="nothing to recover"):
            FaultSpec(node_recover_after_s=5.0)

    def test_label_shows_the_stagger(self):
        spec = FaultSpec(
            fail_node_ids=(0, 1),
            fail_nodes_at_s=10.0,
            fail_node_stagger_s=5.0,
        )
        assert "@5s apart" in spec.label()
        assert "@" not in FaultSpec(
            fail_node_ids=(0, 1), fail_nodes_at_s=10.0
        ).label()


class TestIdentity:
    def test_equality_is_field_wise(self):
        assert FaultSpec() == FaultSpec()
        assert FaultSpec(disk_fault_rate_per_hour=6.0) == FaultSpec(
            disk_fault_rate_per_hour=6.0
        )
        assert FaultSpec(disk_fault_rate_per_hour=6.0) != FaultSpec()

    def test_hashable_and_frozen(self):
        spec = FaultSpec()
        assert hash(spec) == hash(FaultSpec())
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.disk_fault_rate_per_hour = 1.0
