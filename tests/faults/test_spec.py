"""Tests for FaultSpec validation and identity."""

import dataclasses

import pytest

from repro.faults import FaultSpec


class TestDefaults:
    def test_default_is_disabled(self):
        spec = FaultSpec()
        assert not spec.enabled
        assert spec.disk_fault_rate_per_hour == 0.0
        assert spec.network_fault_rate_per_hour == 0.0

    def test_disk_rate_enables(self):
        assert FaultSpec(disk_fault_rate_per_hour=1.0).enabled

    def test_network_rate_enables(self):
        assert FaultSpec(network_fault_rate_per_hour=1.0).enabled

    def test_label(self):
        assert FaultSpec().label() == "no faults"
        assert "disk" in FaultSpec(disk_fault_rate_per_hour=6.0).label()
        assert "net" in FaultSpec(network_fault_rate_per_hour=2.0).label()


class TestValidation:
    def test_negative_rate(self):
        with pytest.raises(ValueError):
            FaultSpec(disk_fault_rate_per_hour=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(network_fault_rate_per_hour=-1.0)

    def test_zero_total_weight_with_rate(self):
        with pytest.raises(ValueError):
            FaultSpec(
                disk_fault_rate_per_hour=1.0,
                slow_weight=0.0,
                outage_weight=0.0,
                fail_weight=0.0,
            )

    def test_negative_weight(self):
        with pytest.raises(ValueError):
            FaultSpec(slow_weight=-1.0)

    def test_multipliers_must_slow_things_down(self):
        with pytest.raises(ValueError):
            FaultSpec(slow_latency_multiplier=0.5)
        with pytest.raises(ValueError):
            FaultSpec(network_latency_multiplier=0.0)

    def test_nonpositive_durations(self):
        with pytest.raises(ValueError):
            FaultSpec(mean_slow_duration_s=0.0)
        with pytest.raises(ValueError):
            FaultSpec(mean_outage_duration_s=-2.0)

    def test_timeout_and_retries(self):
        with pytest.raises(ValueError):
            FaultSpec(request_timeout_s=0.0)
        with pytest.raises(ValueError):
            FaultSpec(max_retries=-1)
        with pytest.raises(ValueError):
            FaultSpec(failover_penalty_s=-0.1)


class TestIdentity:
    def test_equality_is_field_wise(self):
        assert FaultSpec() == FaultSpec()
        assert FaultSpec(disk_fault_rate_per_hour=6.0) == FaultSpec(
            disk_fault_rate_per_hour=6.0
        )
        assert FaultSpec(disk_fault_rate_per_hour=6.0) != FaultSpec()

    def test_hashable_and_frozen(self):
        spec = FaultSpec()
        assert hash(spec) == hash(FaultSpec())
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.disk_fault_rate_per_hour = 1.0
