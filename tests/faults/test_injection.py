"""End-to-end fault injection: determinism, degraded mode, attribution.

The golden baseline in ``TestEmptySpecIsInert`` pins the *exact*
metrics (and config digest) of a reference run recorded before the
fault subsystem existed.  If a change to the fault code shifts any of
these numbers, fault-free runs are no longer bit-identical to the
pre-fault simulator — which is the subsystem's core contract.
"""

import pytest

from repro import MB, SpiffiConfig, run_simulation
from repro.core.system import SpiffiSystem
from repro.experiments.results import config_digest
from repro.faults import FaultSpec
from repro.telemetry import trace as trace_events


def golden_config(**overrides):
    defaults = dict(
        nodes=2,
        disks_per_node=2,
        terminals=24,
        videos_per_disk=2,
        video_length_s=600.0,
        server_memory_bytes=256 * MB,
        start_spread_s=4.0,
        warmup_grace_s=6.0,
        measure_s=30.0,
        seed=7,
    )
    defaults.update(overrides)
    return SpiffiConfig(**defaults)


#: sha256 config digest of ``golden_config()`` recorded on the commit
#: before the fault subsystem was added.
GOLDEN_DIGEST = "86dd5a5d7585f33c7957fe9821a8aaf3fb3cc2b7984467be2059fd240fff431a"

#: ``RunMetrics.deterministic_dict()`` of ``golden_config()`` recorded
#: on the same commit.
GOLDEN_METRICS = {
    "admission_mean_wait_s": 0.0,
    "admissions_queued": 0,
    "allocation_waits": 0,
    "blocks_delivered": 679,
    "buffer_hit_rate": 1.0,
    "buffer_inflight_hit_rate": 0.0,
    "buffer_references": 680,
    "cpu_utilization_mean": 0.00582500000000441,
    "deadline_misses": 0,
    "disk_utilization_max": 0.41736927058463136,
    "disk_utilization_mean": 0.4120745456778181,
    "disk_utilization_min": 0.4039624878539341,
    "dropped_prefetches": 0,
    "events_processed": 19990,
    "glitches": 0,
    "glitching_terminals": 0,
    "max_response_time_s": 0.02167283331324299,
    "mean_glitch_duration_s": 0.0,
    "mean_response_time_s": 0.021213839967598045,
    "mean_startup_latency_s": 0.0,
    "measure_s": 30.0,
    "network_mean_bytes_per_s": 11886762.666666666,
    "network_peak_bytes_per_s": 14159232.0,
    "pauses_taken": 0,
    "prefetches_completed": 625,
    "prefetches_issued": 626,
    "rereference_rate": 0.07941176470588235,
    "terminals": 24,
    "videos_completed": 0,
    "wasted_prefetches": 0,
}


def faulty_spec(**overrides):
    defaults = dict(
        disk_fault_rate_per_hour=720.0,
        slow_weight=3.0,
        outage_weight=2.0,
        request_timeout_s=0.5,
        mean_outage_duration_s=3.0,
    )
    defaults.update(overrides)
    return FaultSpec(**defaults)


class TestEmptySpecIsInert:
    def test_digest_unchanged_from_pre_fault_build(self):
        assert config_digest(golden_config()) == GOLDEN_DIGEST

    def test_metrics_bit_identical_to_pre_fault_build(self):
        values = run_simulation(golden_config()).deterministic_dict()
        # Every metric that existed before the fault subsystem is
        # bit-identical; every metric added since reads zero.
        assert {key: values[key] for key in GOLDEN_METRICS} == GOLDEN_METRICS
        new_keys = set(values) - set(GOLDEN_METRICS)
        assert all(values[key] == 0 for key in new_keys), new_keys

    def test_fault_fields_all_zero(self):
        metrics = run_simulation(golden_config())
        assert metrics.fault_glitches == 0
        assert metrics.fault_events_injected == 0
        assert metrics.fault_retries == 0
        assert metrics.fault_abandoned_reads == 0
        assert metrics.fault_failed_reads == 0
        assert metrics.scheduling_glitches == metrics.glitches

    def test_no_fault_machinery_instantiated(self):
        system = SpiffiSystem(golden_config())
        assert system.faults is None
        assert system.fault_injector is None


class TestFaultyRuns:
    def test_faulty_run_is_deterministic(self):
        config = golden_config(faults=faulty_spec())
        first = run_simulation(config)
        second = run_simulation(config)
        assert first.deterministic_dict() == second.deterministic_dict()

    def test_faults_change_the_run(self):
        clean = run_simulation(golden_config())
        faulty = run_simulation(golden_config(faults=faulty_spec()))
        assert faulty.fault_events_injected > 0
        assert faulty.deterministic_dict() != clean.deterministic_dict()
        assert config_digest(golden_config(faults=faulty_spec())) != GOLDEN_DIGEST

    def test_glitches_are_fault_attributed(self):
        # An outage-heavy schedule glitches viewers, and every glitch
        # lands while a fault is active (or in its grace window) — the
        # clean run of the same workload is glitch-free.
        metrics = run_simulation(golden_config(faults=faulty_spec()))
        assert metrics.glitches > 0
        assert metrics.fault_glitches > 0
        assert metrics.fault_retries > 0
        assert metrics.scheduling_glitches == 0

    def test_permanent_failure_degrades_but_completes(self):
        spec = FaultSpec(
            disk_fault_rate_per_hour=360.0,
            slow_weight=0.0,
            outage_weight=0.0,
            fail_weight=1.0,
            request_timeout_s=0.5,
        )
        metrics = run_simulation(golden_config(faults=spec))
        # Dead drives fail reads over rather than deadlocking the run.
        assert metrics.fault_failed_reads > 0
        assert metrics.blocks_delivered > 0


class TestFaultTracing:
    def test_trace_records_fault_lifecycle(self):
        system = SpiffiSystem(golden_config(faults=faulty_spec()))
        recorder = system.enable_fault_tracing()
        system.start()
        system.env.run(until=system.config.total_sim_time_s)
        kinds = {event.kind for event in recorder.events()}
        assert trace_events.FAULT_START in kinds
        assert trace_events.FAULT_END in kinds
        assert trace_events.FAULT_RETRY in kinds

    def test_tracing_requires_faults(self):
        system = SpiffiSystem(golden_config())
        with pytest.raises(ValueError):
            system.enable_fault_tracing()
