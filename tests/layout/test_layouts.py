"""Tests for the striped and non-striped layouts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import NonStripedLayout, StripedLayout
from repro.sim import RandomSource

BLOCK = 1024


class TestStripedLayout:
    def make(self, counts=(20, 20), nodes=2, disks=2):
        return StripedLayout(list(counts), nodes, disks, BLOCK)

    def test_figure3_node_then_disk_rotation(self):
        """Paper Figure 3: block 0 → node0/disk0, block 1 → node1/disk0,
        block 2 → node0/disk1, block 3 → node1/disk1, then repeat."""
        layout = self.make()
        expected = [(0, 0), (1, 0), (0, 1), (1, 1), (0, 0)]
        for block, (node, disk) in enumerate(expected):
            placement = layout.locate(0, block)
            assert (placement.node, placement.disk_in_node) == (node, disk)

    def test_fragments_are_contiguous(self):
        layout = self.make()
        # Blocks 0, 4, 8, ... of video 0 share node0/disk0 at sequential
        # offsets (the fragment).
        offsets = [layout.locate(0, b).byte_offset for b in (0, 4, 8, 12)]
        assert offsets == [0, BLOCK, 2 * BLOCK, 3 * BLOCK]

    def test_videos_packed_in_order(self):
        layout = self.make()
        first_of_video1 = layout.locate(1, 0)
        # Video 0 has 20 blocks over 4 disks → 5 per disk.
        assert first_of_video1.byte_offset == 5 * BLOCK

    def test_uneven_video_lengths(self):
        layout = StripedLayout([5], 2, 2, BLOCK)
        # 5 blocks over 4 disks: disk order of extras follows rotation.
        used = [layout.disk_used_bytes(d) for d in range(4)]
        assert sum(used) == 5 * BLOCK

    def test_next_block_on_same_disk(self):
        layout = self.make()
        assert layout.next_block_on_same_disk(0, 3) == 7
        assert layout.next_block_on_same_disk(0, 16) is None
        assert layout.next_block_on_same_disk(0, 19) is None

    def test_locate_bounds(self):
        layout = self.make()
        with pytest.raises(ValueError):
            layout.locate(0, -1)
        with pytest.raises(ValueError):
            layout.locate(0, 20)

    def test_no_two_blocks_share_a_disk_slot(self):
        layout = self.make(counts=(13, 7), nodes=2, disks=2)
        seen = set()
        for video, count in enumerate((13, 7)):
            for block in range(count):
                placement = layout.locate(video, block)
                slot = (placement.disk_global, placement.byte_offset)
                assert slot not in seen
                seen.add(slot)

    def test_disk_used_matches_locations(self):
        counts = (13, 7)
        layout = self.make(counts=counts, nodes=2, disks=2)
        per_disk = [0] * 4
        for video, count in enumerate(counts):
            for block in range(count):
                per_disk[layout.locate(video, block).disk_global] += BLOCK
        for disk in range(4):
            assert layout.disk_used_bytes(disk) == per_disk[disk]

    @given(
        nodes=st.integers(min_value=1, max_value=4),
        disks=st.integers(min_value=1, max_value=4),
        counts=st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_balanced_striping(self, nodes, disks, counts):
        """Every disk holds within one block of every other, per video."""
        layout = StripedLayout(counts, nodes, disks, BLOCK)
        for video, count in enumerate(counts):
            per_disk = [0] * (nodes * disks)
            for block in range(count):
                per_disk[layout.locate(video, block).disk_global] += 1
            assert max(per_disk) - min(per_disk) <= 1


class TestNonStripedLayout:
    def make(self, videos=8, nodes=2, disks=2, seed=3):
        counts = [10] * videos
        return NonStripedLayout(counts, nodes, disks, BLOCK, RandomSource(seed))

    def test_exactly_even_videos_per_disk(self):
        layout = self.make(videos=8)
        per_disk = [0] * 4
        for video in range(8):
            per_disk[layout.video_disk[video]] += 1
        assert per_disk == [2, 2, 2, 2]

    def test_all_blocks_on_one_disk_contiguous(self):
        layout = self.make()
        disk = layout.locate(3, 0).disk_global
        base = layout.locate(3, 0).byte_offset
        for block in range(10):
            placement = layout.locate(3, block)
            assert placement.disk_global == disk
            assert placement.byte_offset == base + block * BLOCK

    def test_next_block_on_same_disk_is_successor(self):
        layout = self.make()
        assert layout.next_block_on_same_disk(0, 0) == 1
        assert layout.next_block_on_same_disk(0, 9) is None

    def test_uneven_spread_rejected(self):
        with pytest.raises(ValueError):
            NonStripedLayout([10] * 7, 2, 2, BLOCK, RandomSource(1))

    def test_assignment_varies_with_seed(self):
        a = self.make(seed=1).video_disk
        b = self.make(seed=2).video_disk
        assert a != b

    def test_split_disk_index(self):
        layout = self.make(nodes=2, disks=2)
        assert layout.split_disk_index(0) == (0, 0)
        assert layout.split_disk_index(1) == (0, 1)
        assert layout.split_disk_index(2) == (1, 0)
        assert layout.split_disk_index(3) == (1, 1)
