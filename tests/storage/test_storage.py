"""Tests for disk geometry, read-ahead cache, and the drive model."""

import math

import pytest

from repro.sched import FcfsScheduler
from repro.sim import Environment, RandomSource
from repro.storage import (
    DiskDrive,
    DiskGeometry,
    DiskRequest,
    DriveParameters,
    ReadAheadCache,
)

CYL = 1_310_720  # 1.25 MB


class TestGeometry:
    def test_cylinder_of(self):
        geometry = DiskGeometry(CYL, 10 * CYL)
        assert geometry.cylinder_of(0) == 0
        assert geometry.cylinder_of(CYL - 1) == 0
        assert geometry.cylinder_of(CYL) == 1
        assert geometry.cylinder_count == 10

    def test_out_of_range(self):
        geometry = DiskGeometry(CYL, 2 * CYL)
        with pytest.raises(ValueError):
            geometry.cylinder_of(-1)
        with pytest.raises(ValueError):
            geometry.cylinder_of(2 * CYL)

    def test_cylinders_crossed(self):
        geometry = DiskGeometry(CYL, 10 * CYL)
        assert geometry.cylinders_crossed(0, 1000) == 0
        assert geometry.cylinders_crossed(CYL - 10, 20) == 1
        assert geometry.cylinders_crossed(0, 2 * CYL + 1) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskGeometry(0, CYL)
        with pytest.raises(ValueError):
            DiskGeometry(CYL, 0)


class TestReadAheadCache:
    def test_sequential_continuation_hits(self):
        cache = ReadAheadCache(2, 128 * 1024)
        assert cache.access(0, 1000) is False
        assert cache.access(1000, 1000) is True
        assert cache.access(2000, 1000) is True
        assert cache.hits == 2

    def test_non_sequential_misses(self):
        cache = ReadAheadCache(2, 128 * 1024)
        cache.access(0, 1000)
        assert cache.access(5000, 1000) is False

    def test_lru_context_eviction(self):
        cache = ReadAheadCache(2, 128 * 1024)
        cache.access(0, 100)        # context A ends at 100
        cache.access(10_000, 100)   # context B ends at 10100
        cache.access(20_000, 100)   # context C evicts A (LRU)
        assert cache.access(10_100, 100) is True  # B survived
        assert cache.access(100, 100) is False  # A is gone (evicts C)

    def test_zero_contexts_never_hit(self):
        cache = ReadAheadCache(0, 0)
        cache.access(0, 100)
        assert cache.access(100, 100) is False


class TestDriveParameters:
    def test_seek_time_zero_distance(self):
        params = DriveParameters()
        assert params.seek_time_s(0) == 0.0

    def test_seek_time_curve(self):
        params = DriveParameters()
        expected = (0.75 + 0.283 * math.sqrt(100)) / 1000.0
        assert params.seek_time_s(100) == pytest.approx(expected)

    def test_seek_monotone(self):
        params = DriveParameters()
        assert params.seek_time_s(400) > params.seek_time_s(100) > 0

    def test_transfer_rate(self):
        params = DriveParameters()
        assert params.transfer_time_s(7_400_000) == pytest.approx(1.0)

    def test_negative_seek_rejected(self):
        with pytest.raises(ValueError):
            DriveParameters().seek_time_s(-1)


def make_drive(env, capacity_cylinders=100):
    params = DriveParameters()
    geometry = DiskGeometry(params.cylinder_bytes, capacity_cylinders * params.cylinder_bytes)
    return DiskDrive(env, 0, params, geometry, FcfsScheduler(), RandomSource(1))


class TestDiskDrive:
    def test_completes_request_with_plausible_service_time(self):
        env = Environment()
        drive = make_drive(env)
        request = DiskRequest(env, byte_offset=50 * CYL, size=512 * 1024, cylinder=50)
        drive.submit(request)
        env.run(until=request.done)
        # Transfer alone is 512KB / 7.4MB/s ≈ 69 ms; with seek+latency
        # the total must be between that and ~100 ms.
        assert 0.069 <= env.now <= 0.105
        assert drive.reads == 1
        assert drive.bytes_read == 512 * 1024

    def test_sequential_read_skips_positioning(self):
        env = Environment()
        drive = make_drive(env)
        first = DiskRequest(env, byte_offset=0, size=128 * 1024, cylinder=0)
        drive.submit(first)
        env.run(until=first.done)
        start = env.now
        second = DiskRequest(env, byte_offset=128 * 1024, size=128 * 1024, cylinder=0)
        drive.submit(second)
        env.run(until=second.done)
        transfer = DriveParameters().transfer_time_s(128 * 1024)
        assert env.now - start == pytest.approx(transfer)

    def test_busy_tracking(self):
        env = Environment()
        drive = make_drive(env)
        request = DiskRequest(env, byte_offset=0, size=512 * 1024, cylinder=0)
        drive.submit(request)
        env.run(until=request.done)
        busy_end = env.now
        # Idle afterwards halves utilization.
        env.timeout(busy_end)
        env.run(until=2 * busy_end)
        assert drive.utilization() == pytest.approx(0.5, abs=0.01)

    def test_requests_queue_one_at_a_time(self):
        env = Environment()
        drive = make_drive(env)
        first = DiskRequest(env, byte_offset=0, size=512 * 1024, cylinder=0)
        second = DiskRequest(env, byte_offset=90 * CYL, size=512 * 1024, cylinder=90)
        drive.submit(first)
        drive.submit(second)
        env.run(until=second.done)
        assert first.completed_at < second.completed_at
        assert second.started_at >= first.completed_at

    def test_reset_stats(self):
        env = Environment()
        drive = make_drive(env)
        request = DiskRequest(env, byte_offset=0, size=512 * 1024, cylinder=0)
        drive.submit(request)
        env.run(until=request.done)
        drive.reset_stats()
        assert drive.reads == 0
        assert drive.busy.busy_time(env.now) == 0.0


class TestDiskRequest:
    def test_tighten_deadline_only_earlier(self):
        env = Environment()
        request = DiskRequest(env, 0, 1024, 0, deadline=100.0)
        request.tighten_deadline(50.0)
        assert request.deadline == 50.0
        request.tighten_deadline(80.0)
        assert request.deadline == 50.0

    def test_slack(self):
        env = Environment()
        request = DiskRequest(env, 0, 1024, 0, deadline=10.0)
        assert request.slack == pytest.approx(10.0)

    def test_size_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            DiskRequest(env, 0, 0, 0)
