"""Tests for the disk scheduling algorithms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import (
    EdfScheduler,
    ElevatorScheduler,
    FcfsScheduler,
    GssScheduler,
    RealTimeScheduler,
    RoundRobinScheduler,
    SchedulerSpec,
)
from repro.sim import Environment
from repro.storage.request import NO_DEADLINE, DiskRequest


def req(env, cylinder, deadline=NO_DEADLINE, terminal=0, prefetch=False):
    return DiskRequest(
        env,
        byte_offset=cylinder * 1_310_720,
        size=1024,
        cylinder=cylinder,
        deadline=deadline,
        is_prefetch=prefetch,
        terminal_id=terminal,
    )


def drain(scheduler, now=0.0, head=0):
    order = []
    while len(scheduler):
        request = scheduler.pop(now, head)
        head = request.cylinder
        order.append(request)
    return order


class TestFcfs:
    def test_pops_in_arrival_order(self):
        env = Environment()
        scheduler = FcfsScheduler()
        requests = [req(env, c) for c in (50, 10, 90)]
        for r in requests:
            scheduler.push(r)
        assert drain(scheduler) == requests


class TestElevator:
    def test_sweeps_upward_then_reverses(self):
        env = Environment()
        scheduler = ElevatorScheduler()
        for cylinder in (80, 20, 50, 10):
            scheduler.push(req(env, cylinder))
        order = [r.cylinder for r in drain(scheduler, head=30)]
        assert order == [50, 80, 20, 10]

    def test_same_cylinder_fifo(self):
        env = Environment()
        scheduler = ElevatorScheduler()
        first = req(env, 40)
        second = req(env, 40)
        scheduler.push(second)  # pushed first → lower seq? no: created first
        scheduler.push(first)
        popped = scheduler.pop(0.0, 0)
        assert popped is first  # FIFO by creation order (seq)

    def test_services_request_at_head_position(self):
        env = Environment()
        scheduler = ElevatorScheduler()
        scheduler.push(req(env, 30))
        assert scheduler.pop(0.0, 30).cylinder == 30


class TestRoundRobin:
    def test_cycles_terminals(self):
        env = Environment()
        scheduler = RoundRobinScheduler()
        for terminal in (0, 0, 1, 2):
            scheduler.push(req(env, 10 * terminal, terminal=terminal))
        order = [r.terminal_id for r in drain(scheduler)]
        assert order == [0, 1, 2, 0]

    def test_oldest_request_per_terminal_first(self):
        env = Environment()
        scheduler = RoundRobinScheduler()
        old = req(env, 5, terminal=3)
        new = req(env, 7, terminal=3)
        scheduler.push(new)
        scheduler.push(old)
        assert scheduler.pop(0.0, 0) is old


class TestGss:
    def test_one_group_one_service_per_terminal_per_sweep(self):
        env = Environment()
        scheduler = GssScheduler(groups=1)
        # Terminal 0 has two requests; terminal 1 has one.
        a0 = req(env, 10, terminal=0)
        a1 = req(env, 20, terminal=0)
        b0 = req(env, 15, terminal=1)
        for r in (a0, a1, b0):
            scheduler.push(r)
        order = drain(scheduler)
        # First sweep: one request each from terminals 0 and 1 (elevator
        # order), then terminal 0's second request.
        assert order == [a0, b0, a1]

    def test_groups_processed_round_robin(self):
        env = Environment()
        scheduler = GssScheduler(groups=2)
        even = req(env, 10, terminal=0)  # group 0
        odd = req(env, 5, terminal=1)   # group 1
        scheduler.push(odd)
        scheduler.push(even)
        first = scheduler.pop(0.0, 0)
        second = scheduler.pop(0.0, first.cylinder)
        assert {first.terminal_id, second.terminal_id} == {0, 1}
        assert first.terminal_id == 0  # group 0 goes first

    def test_empty_groups_skipped(self):
        env = Environment()
        scheduler = GssScheduler(groups=4)
        only = req(env, 10, terminal=3)
        scheduler.push(only)
        assert scheduler.pop(0.0, 0) is only

    def test_group_validation(self):
        with pytest.raises(ValueError):
            GssScheduler(groups=0)


class TestRealTime:
    def test_urgent_class_first_even_if_far(self):
        env = Environment()
        scheduler = RealTimeScheduler(priority_classes=3, priority_spacing_s=2.0)
        near_not_urgent = req(env, 10, deadline=100.0)
        far_urgent = req(env, 90, deadline=1.0)
        scheduler.push(near_not_urgent)
        scheduler.push(far_urgent)
        assert scheduler.pop(0.0, 0) is far_urgent

    def test_elevator_within_class(self):
        env = Environment()
        scheduler = RealTimeScheduler(priority_classes=3, priority_spacing_s=2.0)
        a = req(env, 60, deadline=1.0)
        b = req(env, 30, deadline=1.5)
        scheduler.push(a)
        scheduler.push(b)
        # Both class 0; elevator from head 0 goes to cylinder 30 first.
        assert scheduler.pop(0.0, 0) is b

    def test_priorities_recomputed_with_time(self):
        env = Environment()
        scheduler = RealTimeScheduler(priority_classes=3, priority_spacing_s=2.0)
        request = req(env, 10, deadline=5.0)
        assert scheduler.classify(request, now=0.0) == 2
        assert scheduler.classify(request, now=2.0) == 1
        assert scheduler.classify(request, now=4.5) == 0

    def test_overdue_is_most_urgent(self):
        env = Environment()
        scheduler = RealTimeScheduler()
        request = req(env, 10, deadline=1.0)
        assert scheduler.classify(request, now=5.0) == 0

    def test_no_deadline_is_least_urgent(self):
        env = Environment()
        scheduler = RealTimeScheduler(priority_classes=3)
        prefetch = req(env, 10, prefetch=True)
        assert scheduler.classify(prefetch, now=0.0) == 2

    def test_figure5_example(self):
        """Figure 5: 3 classes, 2s spacing — within 2s → class 0,
        beyond 4s → class 2."""
        env = Environment()
        scheduler = RealTimeScheduler(priority_classes=3, priority_spacing_s=2.0)
        assert scheduler.classify(req(env, 0, deadline=1.9), 0.0) == 0
        assert scheduler.classify(req(env, 0, deadline=3.0), 0.0) == 1
        assert scheduler.classify(req(env, 0, deadline=4.1), 0.0) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            RealTimeScheduler(priority_classes=0)
        with pytest.raises(ValueError):
            RealTimeScheduler(priority_spacing_s=0)


class TestEdf:
    def test_earliest_deadline_first(self):
        env = Environment()
        scheduler = EdfScheduler()
        late = req(env, 10, deadline=50.0)
        early = req(env, 90, deadline=5.0)
        scheduler.push(late)
        scheduler.push(early)
        assert scheduler.pop(0.0, 0) is early


class TestSchedulerSpec:
    def test_build_each(self):
        for name, cls in (
            ("fcfs", FcfsScheduler),
            ("elevator", ElevatorScheduler),
            ("round_robin", RoundRobinScheduler),
            ("gss", GssScheduler),
            ("realtime", RealTimeScheduler),
            ("edf", EdfScheduler),
        ):
            assert isinstance(SchedulerSpec(name).build(), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            SchedulerSpec("lifo")

    def test_labels(self):
        assert "3 prio" in SchedulerSpec("realtime").label()
        assert "1 group" in SchedulerSpec("gss").label()

    def test_is_real_time(self):
        assert SchedulerSpec("realtime").is_real_time
        assert SchedulerSpec("edf").is_real_time
        assert not SchedulerSpec("elevator").is_real_time


@given(
    cylinders=st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=30),
    name=st.sampled_from(["fcfs", "elevator", "round_robin", "gss", "realtime", "edf"]),
)
@settings(max_examples=60, deadline=None)
def test_property_every_request_serviced_exactly_once(cylinders, name):
    """No scheduler loses or duplicates requests."""
    env = Environment()
    scheduler = SchedulerSpec(name).build()
    requests = [
        req(env, cylinder, deadline=float(i), terminal=i % 5)
        for i, cylinder in enumerate(cylinders)
    ]
    for request in requests:
        scheduler.push(request)
    serviced = drain(scheduler)
    assert len(serviced) == len(requests)
    assert set(map(id, serviced)) == set(map(id, requests))
