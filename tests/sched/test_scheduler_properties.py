"""Deeper scheduler properties: fairness, degeneracy, and ordering."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import (
    ElevatorScheduler,
    GssScheduler,
    RealTimeScheduler,
    RoundRobinScheduler,
)
from repro.sim import Environment
from repro.storage.request import DiskRequest


def req(env, cylinder, deadline=math.inf, terminal=0):
    return DiskRequest(env, cylinder * 1_310_720, 1024, cylinder,
                       deadline=deadline, terminal_id=terminal)


@given(cylinders=st.lists(st.integers(0, 100), min_size=2, max_size=20))
@settings(max_examples=50, deadline=None)
def test_property_elevator_serves_sweep_order(cylinders):
    """Within one direction, elevator's service order is monotone in
    cylinder until the sweep reverses (at most one reversal per drain
    of a static queue)."""
    env = Environment()
    scheduler = ElevatorScheduler()
    for cylinder in cylinders:
        scheduler.push(req(env, cylinder))
    head = 0
    order = []
    while len(scheduler):
        request = scheduler.pop(0.0, head)
        head = request.cylinder
        order.append(request.cylinder)
    # Split into monotone runs: a static queue drains in at most
    # one ascending then one descending run (or vice versa).
    runs = 1
    direction = 0
    for previous, current in zip(order, order[1:]):
        step = (current > previous) - (current < previous)
        if step != 0:
            if direction != 0 and step != direction:
                runs += 1
            direction = step
    assert runs <= 2


@given(
    cylinders=st.lists(st.integers(0, 100), min_size=1, max_size=15),
    spacing=st.floats(0.5, 10.0),
)
@settings(max_examples=40, deadline=None)
def test_property_realtime_one_class_equals_elevator(cylinders, spacing):
    """With a single priority class every request is equal and the
    real-time algorithm must produce exactly elevator order."""
    env = Environment()
    realtime = RealTimeScheduler(priority_classes=1, priority_spacing_s=spacing)
    elevator = ElevatorScheduler()
    for i, cylinder in enumerate(cylinders):
        realtime.push(req(env, cylinder, deadline=float(i)))
        elevator.push(req(env, cylinder, deadline=float(i)))
    head_a = head_b = 0
    while len(realtime):
        a = realtime.pop(0.0, head_a)
        b = elevator.pop(0.0, head_b)
        head_a, head_b = a.cylinder, b.cylinder
        assert a.cylinder == b.cylinder


@given(terminals=st.lists(st.integers(0, 7), min_size=2, max_size=20))
@settings(max_examples=40, deadline=None)
def test_property_round_robin_fairness(terminals):
    """No terminal is served twice before another waiting terminal is
    served once (single-request-per-terminal gap bound)."""
    env = Environment()
    scheduler = RoundRobinScheduler()
    for terminal in terminals:
        scheduler.push(req(env, terminal * 10, terminal=terminal))
    served = []
    while len(scheduler):
        served.append(scheduler.pop(0.0, 0).terminal_id)
    # Between two services of terminal t, every other terminal that had
    # a pending request at the first service appears at least once.
    for i, t in enumerate(served):
        try:
            j = served.index(t, i + 1)
        except ValueError:
            continue
        pending_between = set(served[i + 1:j])
        still_pending = {x for x in served[i + 1:] if x != t}
        # All distinct terminals served between the two services of t:
        assert pending_between == {x for x in served[i + 1:j]}
        # Fairness: at least one other terminal intervenes if any other
        # terminal was still pending.
        if still_pending:
            assert pending_between


@given(
    group_count=st.integers(1, 5),
    terminals=st.lists(st.integers(0, 9), min_size=1, max_size=25),
)
@settings(max_examples=40, deadline=None)
def test_property_gss_single_service_per_terminal_per_batch(group_count, terminals):
    env = Environment()
    scheduler = GssScheduler(groups=group_count)
    for terminal in terminals:
        scheduler.push(req(env, terminal * 7, terminal=terminal))
    # Drain fully; every pushed request must come out exactly once.
    seen = 0
    head = 0
    while len(scheduler):
        request = scheduler.pop(0.0, head)
        head = request.cylinder
        seen += 1
    assert seen == len(terminals)
