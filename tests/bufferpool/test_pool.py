"""Tests for the buffer pool: hits, misses, merging, eviction, waits."""

import pytest

from repro.bufferpool import HIT, INFLIGHT, MISS, BufferPool, make_policy
from repro.sim import Environment


def make_pool(env, capacity=4, policy="love_prefetch", share=1.0):
    return BufferPool(env, capacity, make_policy(policy), prefetch_pool_share=share)


def acquire_now(env, pool, key, size=1024, terminal_id=None, for_prefetch=False):
    """Run an acquire that must complete without waiting."""
    result = []

    def proc(env):
        outcome = yield from pool.acquire(key, size, terminal_id, for_prefetch)
        result.append(outcome)

    env.process(proc(env))
    env.run()
    assert result, "acquire blocked unexpectedly"
    return result[0]


class TestAcquire:
    def test_miss_then_hit(self):
        env = Environment()
        pool = make_pool(env)
        page, status = acquire_now(env, pool, ("v", 0), terminal_id=1)
        assert status == MISS
        pool.finish_io(page)
        pool.unpin(page)
        page2, status2 = acquire_now(env, pool, ("v", 0), terminal_id=1)
        assert status2 == HIT
        assert page2 is page
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1

    def test_inflight_merge(self):
        env = Environment()
        pool = make_pool(env)
        page, status = acquire_now(env, pool, ("v", 0), terminal_id=1)
        assert status == MISS
        page2, status2 = acquire_now(env, pool, ("v", 0), terminal_id=2)
        assert status2 == INFLIGHT
        assert page2 is page
        assert page.pins == 2
        assert pool.stats.inflight_hits == 1

    def test_rereference_counting(self):
        env = Environment()
        pool = make_pool(env)
        page, _ = acquire_now(env, pool, ("v", 0), terminal_id=1)
        pool.finish_io(page)
        pool.unpin(page)
        acquire_now(env, pool, ("v", 0), terminal_id=1)
        assert pool.stats.rereferences == 0  # same terminal
        acquire_now(env, pool, ("v", 0), terminal_id=2)
        assert pool.stats.rereferences == 1  # different terminal

    def test_eviction_when_full(self):
        env = Environment()
        pool = make_pool(env, capacity=2)
        pages = []
        for block in range(2):
            page, _ = acquire_now(env, pool, ("v", block), terminal_id=1)
            pool.finish_io(page)
            pool.unpin(page)
            pages.append(page)
        page3, status = acquire_now(env, pool, ("v", 2), terminal_id=1)
        assert status == MISS
        assert pool.resident_pages == 2
        assert pool.lookup(("v", 0)) is None  # LRU victim evicted
        assert pool.stats.evictions == 1

    def test_blocks_when_all_pinned_then_resumes(self):
        env = Environment()
        pool = make_pool(env, capacity=1)
        page, _ = acquire_now(env, pool, ("v", 0), terminal_id=1)
        pool.finish_io(page)  # loaded but still pinned

        outcome = []

        def blocked(env):
            result = yield from pool.acquire(("v", 1), 1024, 2, False)
            outcome.append((env.now, result[1]))

        def releaser(env):
            yield env.timeout(5)
            pool.unpin(page)

        env.process(blocked(env))
        env.process(releaser(env))
        env.run()
        assert outcome == [(5.0, MISS)]
        assert pool.stats.allocation_waits >= 1

    def test_waiter_joins_page_created_meanwhile(self):
        env = Environment()
        pool = make_pool(env, capacity=1)
        holder, _ = acquire_now(env, pool, ("v", 0), terminal_id=1)
        pool.finish_io(holder)  # pinned: pool full

        outcomes = {}

        def late_same_key(env):
            result = yield from pool.acquire(("v", 0), 1024, 2, False)
            outcomes["late"] = result[1]

        def releaser(env):
            yield env.timeout(3)
            pool.unpin(holder)

        # The late acquirer wants a key that is ALREADY resident — it
        # must join immediately rather than wait for a frame.
        env.process(late_same_key(env))
        env.process(releaser(env))
        env.run()
        assert outcomes["late"] == HIT

    def test_wasted_prefetch_counted(self):
        env = Environment()
        pool = make_pool(env, capacity=1)
        page = pool.try_acquire_for_prefetch(("v", 0), 1024)
        pool.finish_io(page)
        pool.unpin(page)
        # A real request for a different block evicts the unused
        # prefetched page.
        acquire_now(env, pool, ("v", 1), terminal_id=1)
        assert pool.stats.wasted_prefetches == 1

    def test_unpin_below_zero_rejected(self):
        env = Environment()
        pool = make_pool(env)
        page, _ = acquire_now(env, pool, ("v", 0), terminal_id=1)
        pool.unpin(page)
        with pytest.raises(ValueError):
            pool.unpin(page)


class TestPrefetchAllocation:
    def test_resident_key_skipped(self):
        env = Environment()
        pool = make_pool(env)
        acquire_now(env, pool, ("v", 0), terminal_id=1)
        assert pool.try_acquire_for_prefetch(("v", 0), 1024) is None

    def test_pool_share_cap_drops(self):
        env = Environment()
        pool = make_pool(env, capacity=4, share=0.5)
        assert pool.prefetch_cap_pages == 2
        assert pool.try_acquire_for_prefetch(("v", 0), 1024) is not None
        assert pool.try_acquire_for_prefetch(("v", 1), 1024) is not None
        assert pool.try_acquire_for_prefetch(("v", 2), 1024) is None
        assert pool.stats.dropped_prefetches == 1

    def test_reference_frees_cap_headroom(self):
        env = Environment()
        pool = make_pool(env, capacity=4, share=0.5)
        page = pool.try_acquire_for_prefetch(("v", 0), 1024)
        pool.try_acquire_for_prefetch(("v", 1), 1024)
        pool.finish_io(page)
        pool.unpin(page)
        acquire_now(env, pool, ("v", 0), terminal_id=1)  # reference it
        assert pool.prefetched_resident == 1
        assert pool.try_acquire_for_prefetch(("v", 2), 1024) is not None

    def test_constrained_prefetch_never_evicts_prefetched(self):
        env = Environment()
        pool = make_pool(env, capacity=4, share=0.75, policy="love_prefetch")
        assert pool.prefetch_cap_pages == 3
        for block in range(2):
            page = pool.try_acquire_for_prefetch(("v", block), 1024)
            pool.finish_io(page)
            pool.unpin(page)
        # Two real pages keep the pool full and pinned.
        acquire_now(env, pool, ("r", 0), terminal_id=1)
        acquire_now(env, pool, ("r", 1), terminal_id=1)
        assert pool.resident_pages == 4
        # Under the cap (2 < 3) but the only evictable pages are
        # prefetched: a constrained prefetch must drop, not cannibalise.
        assert pool.try_acquire_for_prefetch(("v", 9), 1024) is None
        assert pool.stats.dropped_prefetches == 1
        assert pool.stats.wasted_prefetches == 0

    def test_unconstrained_prefetch_cannibalises(self):
        env = Environment()
        pool = make_pool(env, capacity=2, share=1.0, policy="global_lru")
        for block in range(2):
            page = pool.try_acquire_for_prefetch(("v", block), 1024)
            pool.finish_io(page)
            pool.unpin(page)
        third = pool.try_acquire_for_prefetch(("v", 2), 1024)
        assert third is not None
        assert pool.stats.wasted_prefetches == 1

    def test_pinned_pool_drops_prefetch(self):
        env = Environment()
        pool = make_pool(env, capacity=1, share=1.0)
        acquire_now(env, pool, ("v", 0), terminal_id=1)  # pinned, in flight
        assert pool.try_acquire_for_prefetch(("v", 1), 1024) is None


class TestValidation:
    def test_capacity(self):
        env = Environment()
        with pytest.raises(ValueError):
            make_pool(env, capacity=0)

    def test_share_range(self):
        env = Environment()
        with pytest.raises(ValueError):
            make_pool(env, share=0.0)
        with pytest.raises(ValueError):
            make_pool(env, share=1.5)
