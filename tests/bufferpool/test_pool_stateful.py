"""Stateful property test: the buffer pool under random operation mixes.

Drives random sequences of real reads, prefetches, and re-references
against both replacement policies, checking structural invariants the
simulator relies on after every step.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.bufferpool import BufferPool, make_policy
from repro.sim import Environment

KEYS = [("v", block) for block in range(12)]
CAPACITY = 6


class BufferPoolMachine(RuleBasedStateMachine):
    @initialize(policy=st.sampled_from(["global_lru", "love_prefetch"]),
                share=st.sampled_from([0.5, 1.0]))
    def setup(self, policy, share):
        self.env = Environment()
        self.pool = BufferPool(
            self.env, CAPACITY, make_policy(policy), prefetch_pool_share=share
        )
        self.loaded_reads = 0

    def _drive(self, generator):
        """Run a pool generator to completion (no simulated waiting is
        possible here because every page is unpinned between rules)."""
        result = {}

        def proc(env):
            result["value"] = yield from generator
        process = self.env.process(proc(self.env))
        self.env.run(until=process)
        return result["value"]

    @rule(key=st.sampled_from(KEYS), terminal=st.integers(0, 3))
    def real_read(self, key, terminal):
        page, status = self._drive(
            self.pool.acquire(key, 1024, terminal_id=terminal)
        )
        assert status in ("hit", "inflight", "miss")
        if status == "miss":
            self.pool.finish_io(page)
            self.loaded_reads += 1
        assert not page.in_flight
        assert not page.is_prefetched  # referenced pages leave the chain
        self.pool.unpin(page)

    @rule(key=st.sampled_from(KEYS))
    def prefetch(self, key):
        page = self.pool.try_acquire_for_prefetch(key, 1024)
        if page is not None:
            assert page.is_prefetched
            self.pool.finish_io(page)
            self.pool.unpin(page)

    @invariant()
    def capacity_respected(self):
        if not hasattr(self, "pool"):
            return
        assert self.pool.resident_pages <= CAPACITY

    @invariant()
    def prefetched_counter_consistent(self):
        if not hasattr(self, "pool"):
            return
        actual = sum(1 for page in self.pool.pages.values() if page.is_prefetched)
        assert self.pool.prefetched_resident == actual

    @invariant()
    def all_pages_unpinned_between_rules(self):
        if not hasattr(self, "pool"):
            return
        assert all(page.pins == 0 for page in self.pool.pages.values())
        assert all(not page.in_flight for page in self.pool.pages.values())

    @invariant()
    def victim_is_always_evictable(self):
        if not hasattr(self, "pool"):
            return
        victim = self.pool.policy.victim()
        if victim is not None:
            assert victim.evictable
        restricted = self.pool.policy.victim(exclude_prefetched=True)
        if restricted is not None:
            assert restricted.evictable and not restricted.is_prefetched

    @invariant()
    def stats_add_up(self):
        if not hasattr(self, "pool"):
            return
        stats = self.pool.stats
        assert stats.references == stats.hits + stats.inflight_hits + stats.misses


TestBufferPoolStateful = BufferPoolMachine.TestCase
TestBufferPoolStateful.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
