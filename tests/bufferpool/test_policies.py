"""Tests for the global LRU and love prefetch replacement policies."""

import pytest

from repro.bufferpool import GlobalLru, LovePrefetch, Page, make_policy


def page(key, pins=0):
    p = Page(key, 1024)
    p.pins = pins
    return p


class TestGlobalLru:
    def test_victim_is_oldest_unpinned(self):
        policy = GlobalLru()
        a, b = page(("v", 0)), page(("v", 1))
        policy.on_insert(a, prefetched=False)
        policy.on_insert(b, prefetched=False)
        assert policy.victim() is a

    def test_reference_moves_to_tail(self):
        policy = GlobalLru()
        a, b = page(("v", 0)), page(("v", 1))
        policy.on_insert(a, prefetched=False)
        policy.on_insert(b, prefetched=False)
        policy.on_reference(a)
        assert policy.victim() is b

    def test_pinned_pages_skipped(self):
        policy = GlobalLru()
        a, b = page(("v", 0), pins=1), page(("v", 1))
        policy.on_insert(a, prefetched=False)
        policy.on_insert(b, prefetched=False)
        assert policy.victim() is b

    def test_no_distinction_for_prefetched(self):
        policy = GlobalLru()
        pre = page(("v", 0))
        ref = page(("v", 1))
        policy.on_insert(pre, prefetched=True)
        policy.on_insert(ref, prefetched=False)
        # Single queue: the prefetched page is oldest and is evicted
        # first even though it has not been used yet.
        assert policy.victim() is pre

    def test_exclude_prefetched(self):
        policy = GlobalLru()
        pre = page(("v", 0))
        ref = page(("v", 1))
        policy.on_insert(pre, prefetched=True)
        policy.on_insert(ref, prefetched=False)
        assert policy.victim(exclude_prefetched=True) is ref

    def test_evict_removes(self):
        policy = GlobalLru()
        a = page(("v", 0))
        policy.on_insert(a, prefetched=False)
        policy.on_evict(a)
        assert policy.victim() is None


class TestLovePrefetch:
    def test_referenced_chain_sacrificed_first(self):
        policy = LovePrefetch()
        pre = page(("v", 0))
        ref = page(("v", 1))
        policy.on_insert(pre, prefetched=True)
        policy.on_insert(ref, prefetched=False)
        # Even though the prefetched page is older, the referenced page
        # is the victim (Figure 4).
        assert policy.victim() is ref

    def test_prefetched_chain_as_last_resort(self):
        policy = LovePrefetch()
        pre = page(("v", 0))
        policy.on_insert(pre, prefetched=True)
        assert policy.victim() is pre
        assert policy.victim(exclude_prefetched=True) is None

    def test_reference_moves_between_chains(self):
        policy = LovePrefetch()
        pre = page(("v", 0))
        other = page(("v", 1))
        policy.on_insert(pre, prefetched=True)
        policy.on_insert(other, prefetched=True)
        policy.on_reference(pre)
        assert not pre.is_prefetched
        # pre is now on the referenced chain and becomes the victim.
        assert policy.victim() is pre

    def test_lru_within_each_chain(self):
        policy = LovePrefetch()
        first = page(("v", 0))
        second = page(("v", 1))
        policy.on_insert(first, prefetched=False)
        policy.on_insert(second, prefetched=False)
        policy.on_reference(first)
        assert policy.victim() is second

    def test_evict_from_either_chain(self):
        policy = LovePrefetch()
        pre = page(("v", 0))
        ref = page(("v", 1))
        policy.on_insert(pre, prefetched=True)
        policy.on_insert(ref, prefetched=False)
        policy.on_evict(pre)
        policy.on_evict(ref)
        assert policy.victim() is None


class TestFactory:
    def test_names(self):
        assert isinstance(make_policy("global_lru"), GlobalLru)
        assert isinstance(make_policy("love_prefetch"), LovePrefetch)
        with pytest.raises(ValueError):
            make_policy("clock")
