"""Shared differential-replay harness for the simulation kernel.

One place holds the seeded workload generators and the replay driver
that ``test_kernel_differential`` and ``test_kernel_properties`` (and
the backend-matrix tests) all share, so every suite replays *the same*
programs on every event-queue backend and on the naive reference
interpreter:

* :func:`build_scenario` — a random tangle of sleeping, signalling,
  spawning, and waiting processes built only from the API surface the
  real kernel and ``reference_kernel.RefEnvironment`` share.
* :func:`build_event_program` — queue-stress programs: same-timestamp
  bursts, zero-delay cascades, far-future parking, signal/wait races.
  Also common-surface, so it replays three ways (heap, calendar,
  reference).
* :func:`build_random_graph` — the extended kernel surface (interrupts
  i.e. cancellation, URGENT delivery, child joins); the reference
  interpreter doesn't speak interrupts, so this replays two ways
  across the real backends only.

:data:`BACKENDS` is the matrix every backend-parameterized test runs
over: the heap default, the adaptive calendar queue, and fixed calendar
widths down to the degenerate everything-in-one-bucket case.  Whatever
the backend, :func:`run_on` must observe byte-identical results —
that's the whole contract of the event-queue seam.
"""

import hashlib
import random

from repro.sim import Environment, Interrupt, SimSpec

#: Backend matrix for parameterized differential/property tests.  The
#: fixed calendar widths force every structural regime: sub-tie-spacing
#: buckets (many empty slots), coarse buckets (deep sorted runs), and
#: one giant bucket (degenerates to sort-once-and-drain).
BACKENDS = {
    "heap": SimSpec(event_queue="heap"),
    "calendar": SimSpec(event_queue="calendar"),
    "calendar-1ms": SimSpec(event_queue="calendar", bucket_width_s=0.001),
    "calendar-500ms": SimSpec(event_queue="calendar", bucket_width_s=0.5),
    "calendar-one-bucket": SimSpec(event_queue="calendar", bucket_width_s=1e9),
}
BACKEND_NAMES = tuple(BACKENDS)

#: run() deadline for :func:`build_event_program` replays — far enough
#: that all finite activity completes, so the far-future events are
#: exactly the pending set every backend must agree on.
EVENT_PROGRAM_HORIZON = 200.0


def make_env(backend: str) -> Environment:
    """A fresh kernel environment running the named backend."""
    return Environment(queue=BACKENDS[backend].build_queue())


def pending_count(env) -> int:
    """Events still queued, on either the real kernel or the reference."""
    queue = getattr(env, "_queue", None)
    if queue is None:
        queue = env.queue
    return len(queue)


def observation_digest(observations: dict) -> str:
    """Stable content hash of a :func:`run_on` observation dict."""
    return hashlib.sha256(repr(sorted(observations.items())).encode()).hexdigest()


def run_on(env_factory, seed: int, build=None, until: float | None = None) -> dict:
    """Replay one seeded program and collect every observable.

    *env_factory* is any zero-arg callable returning an environment
    (the ``Environment`` class itself, ``RefEnvironment``, or a lambda
    closing over :func:`make_env`).  *build* is the program generator
    (default :func:`build_scenario`).  The observation dict — execution
    log, completion values, final clock, events processed, and pending
    count — is the unit of comparison: two kernels agree iff their
    observations are equal.
    """
    env = env_factory()
    log: list = []
    top = (build or build_scenario)(env, seed, log)
    env.run(until=until)
    completions = [
        (process.value if process.processed else None) for process in top
    ]
    return {
        "log": log,
        "completions": completions,
        "now": env.now,
        "events_processed": env.events_processed,
        "pending": pending_count(env),
    }


# ----------------------------------------------------------------------
# Program generators
# ----------------------------------------------------------------------
def build_scenario(env, seed: int, log: list) -> list:
    """Spawn the same random process graph on either kernel.

    Uses only the common surface: ``timeout``/``event``/``process``,
    ``succeed``, ``triggered``, and waiting on processes.  Returns the
    top-level processes so completions can be compared.
    """
    rng = random.Random(seed)
    shared = [env.event() for _ in range(rng.randint(1, 3))]
    top = []

    def chore(name, stream):
        total = 0.0
        for step in range(stream.randint(1, 5)):
            roll = stream.random()
            if roll < 0.5:
                delay = round(stream.uniform(0.0, 6.0), 3)
                value = yield env.timeout(delay, value=delay)
                total += value
                log.append((name, step, "slept", env.now, value))
            elif roll < 0.65:
                event = shared[stream.randrange(len(shared))]
                if not event.triggered:
                    event.succeed(value=f"{name}/{step}")
                    log.append((name, step, "signalled", env.now))
                yield env.timeout(round(stream.uniform(0.0, 1.0), 3))
            elif roll < 0.8:
                event = shared[stream.randrange(len(shared))]
                if event.triggered:
                    value = yield event  # often already processed: the
                    # wait-on-finished immediate-resume path on both sides
                    log.append((name, step, "observed", env.now, value))
                else:
                    yield env.timeout(round(stream.uniform(0.0, 2.0), 3))
                    log.append((name, step, "paused", env.now))
            else:
                child = env.process(child_chore(f"{name}.c{step}", stream))
                value = yield child
                log.append((name, step, "joined", env.now, value))
        return (name, round(total, 3))

    def child_chore(name, stream):
        yield env.timeout(round(stream.uniform(0.0, 3.0), 3))
        log.append((name, "child-done", env.now))
        return name

    for index in range(rng.randint(2, 7)):
        stream = random.Random(rng.getrandbits(64))
        process = env.process(chore(f"p{index}", stream), name=f"p{index}")
        process.callbacks.append(
            lambda event, index=index: log.append(("complete", index, env.now))
        )
        top.append(process)

    # Late same-timestamp timeouts stress FIFO agreement too.
    tie = round(rng.uniform(0.0, 4.0), 3)
    for extra in range(rng.randint(0, 4)):
        timeout = env.timeout(tie, value=extra)
        timeout.callbacks.append(
            lambda event, extra=extra: log.append(("tie", extra, env.now))
        )
    return top


def build_event_program(env, seed: int, log: list) -> list:
    """Queue-stress program: the event patterns that break calendars.

    Same-timestamp bursts (FIFO across bucket boundaries), zero-delay
    cascades (pushes landing at/behind the active bucket), far-future
    parking (events beyond the run deadline — and far outside any sane
    bucket width), and signal/wait races.  Common surface only, so it
    replays on the reference interpreter as the third voter.  Replay
    with ``until=EVENT_PROGRAM_HORIZON`` so the far-future events stay
    pending and the pending count is part of the observation.
    """
    rng = random.Random(seed)
    shared = [env.event() for _ in range(rng.randint(1, 3))]
    top = []

    def driver(name, stream):
        for step in range(stream.randint(3, 8)):
            roll = stream.random()
            if roll < 0.3:
                tie = round(stream.uniform(0.0, 10.0), 3)
                for burst in range(stream.randint(2, 6)):
                    timeout = env.timeout(tie, value=(name, step, burst))
                    timeout.callbacks.append(
                        lambda event: log.append(("tie", event.value, env.now))
                    )
                yield env.timeout(round(stream.uniform(0.0, 2.0), 3))
            elif roll < 0.5:
                for chain in range(stream.randint(1, 4)):
                    timeout = env.timeout(0.0, value=(name, step, chain))
                    timeout.callbacks.append(
                        lambda event: log.append(("zero", event.value, env.now))
                    )
                yield env.timeout(0.0)
                log.append((name, step, "resumed", env.now))
            elif roll < 0.7:
                value = yield env.timeout(
                    round(stream.uniform(0.0, 6.0), 3), value=step
                )
                log.append((name, step, "slept", env.now, value))
            elif roll < 0.85:
                far = env.timeout(
                    round(1e6 + stream.uniform(0.0, 1e9), 3), value=(name, step)
                )
                far.callbacks.append(
                    lambda event: log.append(("far", event.value, env.now))
                )
                yield env.timeout(round(stream.uniform(0.0, 1.0), 3))
            else:
                event = shared[stream.randrange(len(shared))]
                if not event.triggered:
                    event.succeed(value=(name, step))
                    log.append((name, step, "signalled", env.now))
                else:
                    value = yield event
                    log.append((name, step, "observed", env.now, value))
        return name

    for index in range(rng.randint(2, 6)):
        stream = random.Random(rng.getrandbits(64))
        process = env.process(driver(f"d{index}", stream), name=f"d{index}")
        process.callbacks.append(
            lambda event, index=index: log.append(("complete", index, env.now))
        )
        top.append(process)
    return top


class Probe:
    """Counts invocations of one watched callback and logs the clock."""

    def __init__(self, clock_log: list):
        self.calls = 0
        self.clock_log = clock_log

    def __call__(self, event) -> None:
        self.calls += 1
        self.clock_log.append(event.env.now)


def build_random_graph(env: Environment, rng: random.Random, clock_log: list):
    """Spawn a random tangle of processes; returns the probed events.

    The extended kernel surface — interrupts (cancellation of a pending
    wait), URGENT delivery, child joins — which the reference
    interpreter doesn't implement; use for real-backend-vs-real-backend
    replays and invariant checks.
    """
    probed: list = []
    shared = []
    for _ in range(rng.randint(1, 4)):
        event = env.event()
        probe = Probe(clock_log)
        event.callbacks.append(probe)
        probed.append((event, probe))
        shared.append(event)
    processes = []
    started: list = []  # only started processes are interrupt targets:
    # throwing into a generator that never reached its first yield
    # (kernel semantics) aborts it at the function header.

    def worker(env, stream, my_index):
        started.append(processes[my_index])
        for step in range(stream.randint(1, 6)):
            roll = stream.random()
            try:
                if roll < 0.55:
                    yield env.timeout(round(stream.uniform(0.0, 8.0), 3))
                elif roll < 0.7:
                    event = stream.choice(shared)
                    if not event.triggered:
                        event.succeed(value=(my_index, step))
                    yield env.timeout(round(stream.uniform(0.0, 2.0), 3))
                elif roll < 0.85 and started:
                    target = stream.choice(started)
                    if target.is_alive and target is not processes[my_index]:
                        target.interrupt(cause=my_index)
                    yield env.timeout(round(stream.uniform(0.0, 2.0), 3))
                else:
                    child = env.process(
                        sleeper(env, round(stream.uniform(0.0, 3.0), 3))
                    )
                    yield child
            except Interrupt:
                continue
        return my_index

    def sleeper(env, delay):
        yield env.timeout(delay)
        return delay

    for index in range(rng.randint(3, 10)):
        stream = random.Random(rng.getrandbits(64))
        process = env.process(worker(env, stream, index), name=f"worker-{index}")
        probe = Probe(clock_log)
        process.callbacks.append(probe)
        probed.append((process, probe))
        processes.append(process)

    # A crowd of probed timeouts at identical timestamps exercises the
    # (time, priority, seq) tie-break alongside everything else.
    tie_time = round(rng.uniform(0.0, 5.0), 3)
    for _ in range(rng.randint(2, 6)):
        timeout = env.timeout(tie_time)
        probe = Probe(clock_log)
        timeout.callbacks.append(probe)
        probed.append((timeout, probe))
    return probed


def replay_random_graph(backend: str, seed: int):
    """One extended-surface replay; everything observable, hashably."""
    rng = random.Random(seed)
    env = make_env(backend)
    clock_log: list = []
    probed = build_random_graph(env, rng, clock_log)
    env.run()
    return {
        "clock_log": clock_log,
        "now": env.now,
        "events_processed": env.events_processed,
        "outcomes": [
            (event.processed, probe.calls, event.value if event.processed else None)
            for event, probe in probed
        ],
    }
