"""Additional kernel coverage: event edge cases and condition events."""

import pytest

from repro.sim import Environment, Event, EventLifecycleError


class TestEventStates:
    def test_initial_state(self):
        env = Environment()
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_is_error(self):
        env = Environment()
        with pytest.raises(EventLifecycleError):
            _ = env.event().value

    def test_triggered_before_processed(self):
        env = Environment()
        event = env.event()
        event.succeed("x")
        assert event.triggered
        assert not event.processed
        env.run()
        assert event.processed
        assert event.value == "x"

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_fail_after_succeed_is_error(self):
        env = Environment()
        event = env.event()
        event.succeed()
        with pytest.raises(EventLifecycleError):
            event.fail(RuntimeError())

    def test_defused_failure_does_not_crash(self):
        env = Environment()
        event = env.event()
        event.fail(RuntimeError("handled elsewhere"))
        event.defuse()
        env.run()  # must not raise


class TestConditionEdgeCases:
    def test_any_of_empty_fires_immediately(self):
        env = Environment()
        condition = env.any_of([])
        assert condition.triggered
        assert condition.value == {}

    def test_all_of_empty_fires_immediately(self):
        env = Environment()
        condition = env.all_of([])
        assert condition.triggered

    def test_all_of_with_already_processed_events(self):
        env = Environment()
        first = env.timeout(1)
        env.run(until=2.0)
        assert first.processed
        waited = []

        def proc(env):
            yield env.all_of([first, env.timeout(3)])
            waited.append(env.now)

        env.process(proc(env))
        env.run()
        assert waited == [5.0]

    def test_any_of_failure_propagates(self):
        env = Environment()

        class Boom(Exception):
            pass

        caught = []

        def proc(env):
            failing = env.event()
            failing.fail(Boom())
            try:
                yield env.any_of([failing, env.timeout(10)])
            except Boom:
                caught.append(env.now)

        env.process(proc(env))
        env.run()
        assert caught == [0.0]

    def test_multiple_waiters_one_event(self):
        env = Environment()
        event = env.event()
        woken = []

        def waiter(env, tag):
            value = yield event
            woken.append((tag, value))

        for tag in "abc":
            env.process(waiter(env, tag))

        def firer(env):
            yield env.timeout(2)
            event.succeed("go")

        env.process(firer(env))
        env.run()
        assert woken == [("a", "go"), ("b", "go"), ("c", "go")]


class TestProcessEdgeCases:
    def test_nested_process_chains(self):
        env = Environment()

        def leaf(env):
            yield env.timeout(1)
            return "leaf"

        def middle(env):
            value = yield env.process(leaf(env))
            return value + "+middle"

        def root(env, out):
            value = yield env.process(middle(env))
            out.append(value)

        out = []
        env.process(root(env, out))
        env.run()
        assert out == ["leaf+middle"]

    def test_process_name_from_generator(self):
        env = Environment()

        def my_activity(env):
            yield env.timeout(1)

        proc = env.process(my_activity(env))
        assert proc.name == "my_activity"
        named = env.process(my_activity(env), name="custom")
        assert named.name == "custom"
        env.run()

    def test_interrupt_then_continue(self):
        from repro.sim import Interrupt

        env = Environment()
        log = []

        def resilient(env):
            while True:
                try:
                    yield env.timeout(10)
                    log.append(("slept", env.now))
                    return
                except Interrupt:
                    log.append(("poked", env.now))

        def poker(env, victim):
            yield env.timeout(1)
            victim.interrupt()
            yield env.timeout(1)
            victim.interrupt()

        victim = env.process(resilient(env))
        env.process(poker(env, victim))
        env.run()
        assert log == [("poked", 1.0), ("poked", 2.0), ("slept", 12.0)]
