"""Tests for statistics collectors."""

import math

import pytest

from repro.sim import BusyTracker, Tally, TimeWeighted, WindowedRate


class TestTally:
    def test_empty(self):
        tally = Tally()
        assert tally.count == 0
        assert tally.mean == 0.0
        assert tally.variance == 0.0

    def test_mean_min_max(self):
        tally = Tally()
        for value in (2.0, 4.0, 6.0):
            tally.record(value)
        assert tally.mean == pytest.approx(4.0)
        assert tally.minimum == 2.0
        assert tally.maximum == 6.0

    def test_variance_matches_textbook(self):
        tally = Tally()
        values = [1.0, 2.0, 3.0, 4.0]
        for value in values:
            tally.record(value)
        mean = sum(values) / len(values)
        expected = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert tally.variance == pytest.approx(expected)
        assert tally.stdev == pytest.approx(math.sqrt(expected))

    def test_reset(self):
        tally = Tally()
        tally.record(10)
        tally.reset()
        assert tally.count == 0
        assert tally.mean == 0.0


class TestTimeWeighted:
    def test_constant_level(self):
        tw = TimeWeighted(now=0.0, level=3.0)
        assert tw.mean(10.0) == pytest.approx(3.0)

    def test_step_change(self):
        tw = TimeWeighted(now=0.0, level=0.0)
        tw.update(5.0, 10.0)  # level 0 for 5s, then 10
        assert tw.mean(10.0) == pytest.approx(5.0)
        assert tw.maximum == 10.0

    def test_add_delta(self):
        tw = TimeWeighted(now=0.0, level=1.0)
        tw.add(2.0, +2.0)
        assert tw.level == 3.0

    def test_reset_keeps_level(self):
        tw = TimeWeighted(now=0.0, level=4.0)
        tw.update(5.0, 8.0)
        tw.reset(5.0)
        assert tw.mean(10.0) == pytest.approx(8.0)


class TestBusyTracker:
    def test_single_interval(self):
        busy = BusyTracker(0.0)
        busy.begin(2.0)
        busy.end(5.0)
        assert busy.utilization(10.0) == pytest.approx(0.3)

    def test_nested_intervals_count_once(self):
        busy = BusyTracker(0.0)
        busy.begin(0.0)
        busy.begin(1.0)
        busy.end(2.0)
        busy.end(4.0)
        assert busy.busy_time(4.0) == pytest.approx(4.0)

    def test_open_interval_counts_up_to_now(self):
        busy = BusyTracker(0.0)
        busy.begin(0.0)
        assert busy.utilization(8.0) == pytest.approx(1.0)

    def test_unbalanced_end_rejected(self):
        busy = BusyTracker(0.0)
        with pytest.raises(ValueError):
            busy.end(1.0)

    def test_reset_mid_busy(self):
        busy = BusyTracker(0.0)
        busy.begin(0.0)
        busy.reset(10.0)
        assert busy.utilization(20.0) == pytest.approx(1.0)


class TestWindowedRate:
    def test_peak_and_mean(self):
        rate = WindowedRate(window=1.0, now=0.0)
        rate.record(0.1, 100)
        rate.record(0.2, 100)
        rate.record(1.5, 50)
        assert rate.peak_rate == pytest.approx(200.0)
        assert rate.mean_rate(2.0) == pytest.approx(125.0)
        assert rate.total == 250

    def test_peak_includes_current_window(self):
        rate = WindowedRate(window=1.0, now=0.0)
        rate.record(0.5, 300)
        assert rate.peak_rate == pytest.approx(300.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            WindowedRate(window=0.0)

    def test_reset(self):
        rate = WindowedRate(window=1.0, now=0.0)
        rate.record(0.5, 100)
        rate.reset(5.0)
        assert rate.peak_rate == 0.0
        rate.record(5.5, 40)
        assert rate.peak_rate == pytest.approx(40.0)
