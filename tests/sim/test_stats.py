"""Tests for statistics collectors."""

import math

import pytest

from repro.sim import BusyTracker, Quantile, RandomSource, Tally, TimeWeighted, WindowedRate


class TestTally:
    def test_empty(self):
        tally = Tally()
        assert tally.count == 0
        assert tally.mean == 0.0
        assert tally.variance == 0.0

    def test_mean_min_max(self):
        tally = Tally()
        for value in (2.0, 4.0, 6.0):
            tally.record(value)
        assert tally.mean == pytest.approx(4.0)
        assert tally.minimum == 2.0
        assert tally.maximum == 6.0

    def test_variance_matches_textbook(self):
        tally = Tally()
        values = [1.0, 2.0, 3.0, 4.0]
        for value in values:
            tally.record(value)
        mean = sum(values) / len(values)
        expected = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert tally.variance == pytest.approx(expected)
        assert tally.stdev == pytest.approx(math.sqrt(expected))

    def test_reset(self):
        tally = Tally()
        tally.record(10)
        tally.reset()
        assert tally.count == 0
        assert tally.mean == 0.0


def sorted_sample_quantile(values, p):
    """Nearest-rank quantile of a stored sample (the exact reference)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(p * len(ordered)))
    return ordered[rank - 1]


class TestQuantile:
    def test_validation(self):
        for p in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                Quantile(p)

    def test_empty_reads_zero(self):
        assert Quantile(0.5).value == 0.0

    def test_small_samples_exact(self):
        q = Quantile(0.5)
        for value in (9.0, 1.0, 5.0):
            q.record(value)
        assert q.value == 5.0  # exact median of 3 stored samples
        q95 = Quantile(0.95)
        for value in (4.0, 2.0, 8.0, 6.0, 0.0):
            q95.record(value)
        assert q95.value == 8.0  # nearest-rank: ceil(0.95 * 5) = 5th

    def test_reset(self):
        q = Quantile(0.5)
        for value in range(100):
            q.record(float(value))
        q.reset()
        assert q.count == 0
        assert q.value == 0.0
        q.record(3.0)
        assert q.value == 3.0

    def _accuracy(self, draw, p, tolerance, n=5000):
        rng = RandomSource(42)
        values = [draw(rng) for _ in range(n)]
        q = Quantile(p)
        for value in values:
            q.record(value)
        exact = sorted_sample_quantile(values, p)
        scale = max(abs(exact), 1e-9)
        assert abs(q.value - exact) / scale < tolerance, (q.value, exact)

    def test_uniform_accuracy(self):
        for p in (0.5, 0.95, 0.99):
            self._accuracy(lambda rng: rng.uniform(0.0, 10.0), p, 0.05)

    def test_exponential_accuracy(self):
        for p in (0.5, 0.95, 0.99):
            self._accuracy(lambda rng: rng.exponential(2.0), p, 0.10)

    def test_bimodal_accuracy(self):
        def draw(rng):
            # Two well-separated clusters, 80/20 mixture.
            if rng.uniform() < 0.8:
                return rng.uniform(0.0, 1.0)
            return rng.uniform(50.0, 51.0)

        # The p95 straddles the upper cluster: the hard case for P^2.
        for p, tolerance in ((0.5, 0.10), (0.99, 0.10)):
            self._accuracy(draw, p, tolerance)

    def test_monotone_in_p(self):
        rng = RandomSource(7)
        quantiles = [Quantile(p) for p in (0.5, 0.9, 0.99)]
        for _ in range(2000):
            value = rng.exponential(1.0)
            for q in quantiles:
                q.record(value)
        assert quantiles[0].value <= quantiles[1].value <= quantiles[2].value


class TestTimeWeighted:
    def test_constant_level(self):
        tw = TimeWeighted(now=0.0, level=3.0)
        assert tw.mean(10.0) == pytest.approx(3.0)

    def test_step_change(self):
        tw = TimeWeighted(now=0.0, level=0.0)
        tw.update(5.0, 10.0)  # level 0 for 5s, then 10
        assert tw.mean(10.0) == pytest.approx(5.0)
        assert tw.maximum == 10.0

    def test_add_delta(self):
        tw = TimeWeighted(now=0.0, level=1.0)
        tw.add(2.0, +2.0)
        assert tw.level == 3.0

    def test_reset_keeps_level(self):
        tw = TimeWeighted(now=0.0, level=4.0)
        tw.update(5.0, 8.0)
        tw.reset(5.0)
        assert tw.mean(10.0) == pytest.approx(8.0)


class TestBusyTracker:
    def test_single_interval(self):
        busy = BusyTracker(0.0)
        busy.begin(2.0)
        busy.end(5.0)
        assert busy.utilization(10.0) == pytest.approx(0.3)

    def test_nested_intervals_count_once(self):
        busy = BusyTracker(0.0)
        busy.begin(0.0)
        busy.begin(1.0)
        busy.end(2.0)
        busy.end(4.0)
        assert busy.busy_time(4.0) == pytest.approx(4.0)

    def test_open_interval_counts_up_to_now(self):
        busy = BusyTracker(0.0)
        busy.begin(0.0)
        assert busy.utilization(8.0) == pytest.approx(1.0)

    def test_unbalanced_end_rejected(self):
        busy = BusyTracker(0.0)
        with pytest.raises(ValueError):
            busy.end(1.0)

    def test_reset_mid_busy(self):
        busy = BusyTracker(0.0)
        busy.begin(0.0)
        busy.reset(10.0)
        assert busy.utilization(20.0) == pytest.approx(1.0)


class TestWindowedRate:
    def test_peak_and_mean(self):
        rate = WindowedRate(window=1.0, now=0.0)
        rate.record(0.1, 100)
        rate.record(0.2, 100)
        rate.record(1.5, 50)
        assert rate.peak_rate == pytest.approx(200.0)
        assert rate.mean_rate(2.0) == pytest.approx(125.0)
        assert rate.total == 250

    def test_peak_includes_current_window(self):
        rate = WindowedRate(window=1.0, now=0.0)
        rate.record(0.5, 300)
        assert rate.peak_rate == pytest.approx(300.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            WindowedRate(window=0.0)

    def test_reset(self):
        rate = WindowedRate(window=1.0, now=0.0)
        rate.record(0.5, 100)
        rate.reset(5.0)
        assert rate.peak_rate == 0.0
        rate.record(5.5, 40)
        assert rate.peak_rate == pytest.approx(40.0)
