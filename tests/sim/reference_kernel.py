"""A deliberately naive reference interpreter for differential testing.

Implements the kernel's contract — generator processes, one-shot
events, timeouts, (time, priority, seq) FIFO ordering, wait-on-finished
resume via an URGENT immediate event — with the dumbest possible
scheduler: an unsorted list re-sorted on every pop.  No heaps, no
``__slots__``, no inlining, no lazy values.  If the optimized kernel in
``repro.sim`` and this interpreter ever disagree on execution order or
values, the optimization broke semantics.
"""


class RefEvent:
    def __init__(self, env):
        self.env = env
        self.callbacks = []  # None once processed
        self.ok = None  # None = untriggered
        self.value = None

    @property
    def triggered(self):
        return self.ok is not None

    @property
    def processed(self):
        return self.callbacks is None

    def succeed(self, value=None):
        assert self.ok is None, "already triggered"
        self.ok, self.value = True, value
        self.env.schedule(self)
        return self


class RefTimeout(RefEvent):
    def __init__(self, env, delay, value=None):
        super().__init__(env)
        self.ok, self.value = True, value
        env.schedule(self, delay=delay)


class RefProcess(RefEvent):
    def __init__(self, env, generator):
        super().__init__(env)
        self.generator = generator
        bootstrap = RefEvent(env)
        bootstrap.ok = True
        bootstrap.callbacks.append(self.resume)
        env.schedule(bootstrap)

    @property
    def is_alive(self):
        return self.ok is None

    def resume(self, event):
        try:
            target = self.generator.send(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if target.callbacks is not None:
            target.callbacks.append(self.resume)
        else:  # waiting on an already-finished event: immediate URGENT resume
            immediate = RefEvent(self.env)
            immediate.ok, immediate.value = target.ok, target.value
            immediate.callbacks.append(self.resume)
            self.env.schedule(immediate, priority=0)


class RefEnvironment:
    """Sorted-list scheduler: correct, quadratic, obviously so."""

    def __init__(self):
        self.now = 0.0
        self.queue = []  # (time, priority, seq, event), kept unsorted
        self.seq = 0
        self.events_processed = 0

    def schedule(self, event, delay=0.0, priority=1):
        self.seq += 1
        self.queue.append((self.now + delay, priority, self.seq, event))

    def event(self):
        return RefEvent(self)

    def timeout(self, delay, value=None):
        return RefTimeout(self, delay, value)

    def process(self, generator, name=None):
        return RefProcess(self, generator)

    def run(self, until=None):
        while self.queue:
            self.queue.sort(key=lambda entry: entry[:3])
            when, _priority, _seq, event = self.queue.pop(0)
            if until is not None and when > until:
                self.queue.append((when, _priority, _seq, event))
                self.now = until
                return
            self.now = when
            self.events_processed += 1
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
        if until is not None:
            self.now = until
