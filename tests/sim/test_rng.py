"""Tests for the deterministic random streams and distributions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import DiscreteSampler, RandomSource, zipf_weights


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a = RandomSource(42)
        b = RandomSource(42)
        assert [a.uniform() for _ in range(10)] == [b.uniform() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RandomSource(1)
        b = RandomSource(2)
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_spawn_is_stable_across_instances(self):
        a = RandomSource(7).spawn("disk-3")
        b = RandomSource(7).spawn("disk-3")
        assert a.uniform() == b.uniform()

    def test_spawn_labels_are_independent(self):
        root = RandomSource(7)
        assert root.spawn("x").uniform() != root.spawn("y").uniform()

    def test_exponential_mean(self):
        rng = RandomSource(3)
        samples = [rng.exponential(2.0) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.05)

    def test_exponential_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            RandomSource(1).exponential(0)

    def test_poisson_mean(self):
        rng = RandomSource(5)
        samples = [rng.poisson(2.0) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.05)

    def test_poisson_zero_mean(self):
        assert RandomSource(1).poisson(0.0) == 0

    def test_poisson_rejects_negative(self):
        with pytest.raises(ValueError):
            RandomSource(1).poisson(-1)

    def test_randint_bounds(self):
        rng = RandomSource(9)
        values = {rng.randint(3, 5) for _ in range(200)}
        assert values == {3, 4, 5}


class TestZipfWeights:
    def test_sums_to_one(self):
        assert sum(zipf_weights(64, 1.0)) == pytest.approx(1.0)

    def test_zero_skew_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert all(w == pytest.approx(0.1) for w in weights)

    def test_monotone_decreasing(self):
        weights = zipf_weights(32, 1.0)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_higher_skew_more_concentrated(self):
        mild = zipf_weights(64, 0.5)
        steep = zipf_weights(64, 1.5)
        assert steep[0] > mild[0]
        assert steep[-1] < mild[-1]

    def test_rank_ratio_follows_power_law(self):
        weights = zipf_weights(100, 1.0)
        assert weights[0] / weights[9] == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, -0.5)

    @given(
        count=st.integers(min_value=1, max_value=200),
        skew=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_valid_distribution(self, count, skew):
        weights = zipf_weights(count, skew)
        assert len(weights) == count
        assert sum(weights) == pytest.approx(1.0)
        assert all(w > 0 for w in weights)
        assert all(a >= b for a, b in zip(weights, weights[1:]))


class TestDiscreteSampler:
    def test_sampling_tracks_weights(self):
        rng = RandomSource(11)
        sampler = DiscreteSampler([0.7, 0.2, 0.1], rng)
        counts = [0, 0, 0]
        n = 30000
        for _ in range(n):
            counts[sampler.sample()] += 1
        assert counts[0] / n == pytest.approx(0.7, abs=0.02)
        assert counts[1] / n == pytest.approx(0.2, abs=0.02)
        assert counts[2] / n == pytest.approx(0.1, abs=0.02)

    def test_unnormalised_weights_accepted(self):
        sampler = DiscreteSampler([7, 2, 1], RandomSource(1))
        assert sum(sampler.weights) == pytest.approx(1.0)

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            DiscreteSampler([], RandomSource(1))

    @given(seed=st.integers(min_value=0, max_value=10000))
    @settings(max_examples=30, deadline=None)
    def test_property_samples_in_range(self, seed):
        rng = RandomSource(seed)
        sampler = DiscreteSampler([0.25, 0.5, 0.25], rng)
        for _ in range(50):
            assert 0 <= sampler.sample() <= 2
