"""Property-based randomized stress tests for the simulation kernel.

Seeded ``random.Random`` (stdlib only — no hypothesis dependency)
drives the shared generators in ``tests/sim/harness.py`` — random
process graphs of timeouts, shared events, process waits, and
interrupts — and asserts the kernel's structural invariants under
every event-queue backend:

* the clock never goes backwards;
* ties on (time, priority) fire in insertion-sequence (FIFO) order;
* every callback of every processed event runs exactly once, and
  callbacks of never-triggered events never run;
* ``events_processed`` equals queue pops (pushes minus still-queued).

Any violation prints the offending seed, so failures reproduce exactly.
"""

import random

import pytest

from repro.sim import Environment, Interrupt, SimError

from tests.sim.harness import BACKEND_NAMES, build_random_graph, make_env

SEEDS = range(20)


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("seed", SEEDS)
def test_random_graph_invariants(seed, backend):
    rng = random.Random(seed)
    env = make_env(backend)
    clock_log: list = []
    probed = build_random_graph(env, rng, clock_log)
    env.run()

    # Clock monotonicity, as observed by every watched callback.
    assert clock_log == sorted(clock_log), (
        f"clock went backwards (seed {seed}, backend {backend})"
    )

    # No callback lost or doubled.
    for event, probe in probed:
        if event.processed:
            assert probe.calls == 1, (
                f"callback ran {probe.calls}x (seed {seed}, backend {backend})"
            )
        else:
            assert probe.calls == 0, (
                f"callback of pending event ran (seed {seed}, backend {backend})"
            )

    # Conservation: every push is either popped (counted) or still queued.
    assert env.events_processed == env._seq - len(env._queue), (
        f"events_processed {env.events_processed} != pops "
        f"{env._seq - len(env._queue)} (seed {seed}, backend {backend})"
    )
    assert env.events_processed > 0


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("seed", range(8))
def test_same_seed_same_execution(seed, backend):
    """The randomized graph itself must replay bit-identically."""

    def one_run():
        rng = random.Random(seed)
        env = make_env(backend)
        clock_log: list = []
        build_random_graph(env, rng, clock_log)
        env.run()
        return clock_log, env.now, env.events_processed

    assert one_run() == one_run()


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_fifo_tie_break_order_exhaustive(backend):
    """Hundreds of same-timestamp timeouts fire strictly in creation order."""
    env = make_env(backend)
    fired = []
    for index in range(300):
        timeout = env.timeout(1.0)
        timeout.callbacks.append(lambda event, index=index: fired.append(index))
    env.run()
    assert fired == list(range(300))


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_urgent_beats_normal_at_same_timestamp(backend):
    """Interrupt delivery (URGENT) preempts same-time NORMAL events."""
    env = make_env(backend)
    order = []

    def sleeper(env):
        try:
            yield env.timeout(10)
        except Interrupt:
            order.append("interrupt")

    def normal_guy(env):
        yield env.timeout(1)
        order.append("normal")

    def interrupter(env, victim):
        yield env.timeout(1)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(normal_guy(env))  # fires at t=1, NORMAL, earlier seq
    env.process(interrupter(env, victim))
    env.run()
    # The interrupter runs after normal_guy (later seq at t=1), but its
    # URGENT delivery overtakes any NORMAL event scheduled at t=1 later.
    assert order == ["normal", "interrupt"]


def test_events_processed_matches_step_count():
    """run() and step() agree on the work measure."""
    def ticking(env):
        for _ in range(5):
            yield env.timeout(1)

    env_run = Environment()
    env_run.process(ticking(env_run))
    env_run.run()

    env_step = Environment()
    env_step.process(ticking(env_step))
    steps = 0
    while env_step.peek() != float("inf"):
        env_step.step()
        steps += 1
    assert env_run.events_processed == env_step.events_processed == steps


def test_concurrent_interrupts_then_finish_do_not_crash():
    """Two same-timestep interrupts where the first ends the victim:
    the stale second delivery must be dropped, not thrown into the
    exhausted generator (regression for the stress-test finding)."""
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(5)
        except Interrupt:
            log.append(("interrupted", env.now))
            return "early"

    def attacker(env, target):
        yield env.timeout(1)
        target.interrupt()
        target.interrupt()

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert log == [("interrupted", 1.0)]
    assert target.processed and target.ok
    assert target.value == "early"


def test_interrupt_finished_process_still_rejected_under_stress():
    env = Environment()

    def quick(env):
        yield env.timeout(0.5)

    process = env.process(quick(env))
    env.run()
    with pytest.raises(SimError):
        process.interrupt()
