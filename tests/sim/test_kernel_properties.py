"""Property-based randomized stress tests for the simulation kernel.

Seeded ``random.Random`` (stdlib only — no hypothesis dependency)
generates random process graphs of timeouts, shared events, process
waits, and interrupts, then asserts the kernel's structural invariants:

* the clock never goes backwards;
* ties on (time, priority) fire in insertion-sequence (FIFO) order;
* every callback of every processed event runs exactly once, and
  callbacks of never-triggered events never run;
* ``events_processed`` equals heap pops (pushes minus still-queued).

Any violation prints the offending seed, so failures reproduce exactly.
"""

import random

import pytest

from repro.sim import Environment, Interrupt, SimError

SEEDS = range(20)


class Probe:
    """Counts invocations of one watched callback and logs the clock."""

    def __init__(self, clock_log: list):
        self.calls = 0
        self.clock_log = clock_log

    def __call__(self, event) -> None:
        self.calls += 1
        self.clock_log.append(event.env.now)


def build_random_graph(env: Environment, rng: random.Random, clock_log: list):
    """Spawn a random tangle of processes; returns the probed events."""
    probed: list = []
    shared = []
    for _ in range(rng.randint(1, 4)):
        event = env.event()
        probe = Probe(clock_log)
        event.callbacks.append(probe)
        probed.append((event, probe))
        shared.append(event)
    processes = []
    started: list = []  # only started processes are interrupt targets:
    # throwing into a generator that never reached its first yield
    # (kernel semantics) aborts it at the function header.

    def worker(env, stream, my_index):
        started.append(processes[my_index])
        for step in range(stream.randint(1, 6)):
            roll = stream.random()
            try:
                if roll < 0.55:
                    yield env.timeout(round(stream.uniform(0.0, 8.0), 3))
                elif roll < 0.7:
                    event = stream.choice(shared)
                    if not event.triggered:
                        event.succeed(value=(my_index, step))
                    yield env.timeout(round(stream.uniform(0.0, 2.0), 3))
                elif roll < 0.85 and started:
                    target = stream.choice(started)
                    if target.is_alive and target is not processes[my_index]:
                        target.interrupt(cause=my_index)
                    yield env.timeout(round(stream.uniform(0.0, 2.0), 3))
                else:
                    child = env.process(
                        sleeper(env, round(stream.uniform(0.0, 3.0), 3))
                    )
                    yield child
            except Interrupt:
                continue
        return my_index

    def sleeper(env, delay):
        yield env.timeout(delay)
        return delay

    for index in range(rng.randint(3, 10)):
        stream = random.Random(rng.getrandbits(64))
        process = env.process(worker(env, stream, index), name=f"worker-{index}")
        probe = Probe(clock_log)
        process.callbacks.append(probe)
        probed.append((process, probe))
        processes.append(process)

    # A crowd of probed timeouts at identical timestamps exercises the
    # (time, priority, seq) tie-break alongside everything else.
    tie_time = round(rng.uniform(0.0, 5.0), 3)
    for _ in range(rng.randint(2, 6)):
        timeout = env.timeout(tie_time)
        probe = Probe(clock_log)
        timeout.callbacks.append(probe)
        probed.append((timeout, probe))
    return probed


@pytest.mark.parametrize("seed", SEEDS)
def test_random_graph_invariants(seed):
    rng = random.Random(seed)
    env = Environment()
    clock_log: list = []
    probed = build_random_graph(env, rng, clock_log)
    env.run()

    # Clock monotonicity, as observed by every watched callback.
    assert clock_log == sorted(clock_log), f"clock went backwards (seed {seed})"

    # No callback lost or doubled.
    for event, probe in probed:
        if event.processed:
            assert probe.calls == 1, f"callback ran {probe.calls}x (seed {seed})"
        else:
            assert probe.calls == 0, f"callback of pending event ran (seed {seed})"

    # Conservation: every push is either popped (counted) or still queued.
    assert env.events_processed == env._seq - len(env._queue), (
        f"events_processed {env.events_processed} != pops "
        f"{env._seq - len(env._queue)} (seed {seed})"
    )
    assert env.events_processed > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_same_seed_same_execution(seed):
    """The randomized graph itself must replay bit-identically."""

    def one_run():
        rng = random.Random(seed)
        env = Environment()
        clock_log: list = []
        build_random_graph(env, rng, clock_log)
        env.run()
        return clock_log, env.now, env.events_processed

    assert one_run() == one_run()


def test_fifo_tie_break_order_exhaustive():
    """Hundreds of same-timestamp timeouts fire strictly in creation order."""
    env = Environment()
    fired = []
    for index in range(300):
        timeout = env.timeout(1.0)
        timeout.callbacks.append(lambda event, index=index: fired.append(index))
    env.run()
    assert fired == list(range(300))


def test_urgent_beats_normal_at_same_timestamp():
    """Interrupt delivery (URGENT) preempts same-time NORMAL events."""
    env = Environment()
    order = []

    def sleeper(env):
        try:
            yield env.timeout(10)
        except Interrupt:
            order.append("interrupt")

    def normal_guy(env):
        yield env.timeout(1)
        order.append("normal")

    def interrupter(env, victim):
        yield env.timeout(1)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(normal_guy(env))  # fires at t=1, NORMAL, earlier seq
    env.process(interrupter(env, victim))
    env.run()
    # The interrupter runs after normal_guy (later seq at t=1), but its
    # URGENT delivery overtakes any NORMAL event scheduled at t=1 later.
    assert order == ["normal", "interrupt"]


def test_events_processed_matches_step_count():
    """run() and step() agree on the work measure."""
    def ticking(env):
        for _ in range(5):
            yield env.timeout(1)

    env_run = Environment()
    env_run.process(ticking(env_run))
    env_run.run()

    env_step = Environment()
    env_step.process(ticking(env_step))
    steps = 0
    while env_step.peek() != float("inf"):
        env_step.step()
        steps += 1
    assert env_run.events_processed == env_step.events_processed == steps


def test_concurrent_interrupts_then_finish_do_not_crash():
    """Two same-timestep interrupts where the first ends the victim:
    the stale second delivery must be dropped, not thrown into the
    exhausted generator (regression for the stress-test finding)."""
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(5)
        except Interrupt:
            log.append(("interrupted", env.now))
            return "early"

    def attacker(env, target):
        yield env.timeout(1)
        target.interrupt()
        target.interrupt()

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert log == [("interrupted", 1.0)]
    assert target.processed and target.ok
    assert target.value == "early"


def test_interrupt_finished_process_still_rejected_under_stress():
    env = Environment()

    def quick(env):
        yield env.timeout(0.5)

    process = env.process(quick(env))
    env.run()
    with pytest.raises(SimError):
        process.interrupt()
