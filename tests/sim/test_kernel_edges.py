"""Edge-path tests for the kernel: failure surfacing, lifecycle guards,
and the small API corners the mainline suites never hit.  These pin the
error behaviour of the optimized hot path (step()/run() raising a
failed, undefused event; until-event failure modes) and keep the
``src/repro/sim`` coverage floor honest.
"""

import pytest

from repro.sim import Environment, Interrupt, SimError
from repro.sim.errors import EventLifecycleError
from repro.sim.process import Process
from repro.sim.resources import PriorityStore, Resource, Store


class Boom(Exception):
    pass


class TestRunFailureSurfacing:
    def test_step_raises_unhandled_failure(self):
        env = Environment()
        env.event().fail(Boom("nobody listening"))
        with pytest.raises(Boom):
            env.step()

    def test_run_until_already_failed_event_raises(self):
        env = Environment()
        event = env.event()
        event.fail(Boom("early"))
        event.defuse()
        env.run()
        assert event.processed and not event.ok
        with pytest.raises(Boom):
            env.run(until=event)

    def test_run_until_event_that_fails_midrun_raises(self):
        env = Environment()
        event = env.event()

        def saboteur(env, event):
            yield env.timeout(1)
            event.fail(Boom("midrun"))
            event.defuse()

        env.process(saboteur(env, event))
        with pytest.raises(Boom):
            env.run(until=event)

    def test_run_until_already_succeeded_event_returns_value(self):
        env = Environment()
        event = env.event().succeed("done")
        env.run()
        assert env.run(until=event) == "done"

    def test_run_out_of_events_before_until_fires(self):
        env = Environment()
        env.timeout(1.0)
        never = env.event()
        with pytest.raises(SimError, match="ran out of events"):
            env.run(until=never)

    def test_keyboard_interrupt_propagates_out_of_run(self):
        env = Environment()

        def impatient(env):
            yield env.timeout(1)
            raise KeyboardInterrupt

        env.process(impatient(env))
        with pytest.raises(KeyboardInterrupt):
            env.run()


class TestProcessEdges:
    def test_process_rejects_non_generator(self):
        env = Environment()
        with pytest.raises(TypeError, match="needs a generator"):
            Process(env, lambda: None)

    def test_active_process_visible_inside_and_clear_outside(self):
        env = Environment()
        seen = []

        def introspect(env):
            seen.append(env.active_process)
            yield env.timeout(1)

        process = env.process(introspect(env))
        assert env.active_process is None
        env.run()
        assert seen == [process]
        assert env.active_process is None

    def test_yield_already_processed_failure_is_thrown_in(self):
        env = Environment()
        failed = env.event()
        failed.fail(Boom("stale"))
        failed.defuse()
        env.run()
        caught = []

        def waiter(env):
            yield env.timeout(1)
            try:
                yield failed
            except Boom as exc:
                caught.append(exc)

        env.process(waiter(env))
        env.run()
        assert len(caught) == 1

    def test_interrupt_repr_names_cause(self):
        assert repr(Interrupt(cause="disk-3")) == "Interrupt(cause='disk-3')"


class TestConditionLifecycle:
    def test_pending_condition_value_raises(self):
        env = Environment()
        condition = env.any_of([env.event(), env.event()])
        with pytest.raises(EventLifecycleError):
            condition.value


class TestResourceAccounting:
    def test_in_use_queue_length_and_utilization(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def holder(env):
            req = resource.request()
            yield req
            assert resource.in_use == 1
            yield env.timeout(4)
            resource.release(req)

        def queued(env):
            yield env.timeout(1)
            req = resource.request()
            assert resource.queue_length == 1
            yield req
            resource.release(req)

        env.process(holder(env))
        env.process(queued(env))
        env.run(until=2.0)
        # Busy since t=0 with the clock at 2: utilization is exactly 1.
        assert resource.utilization() == pytest.approx(1.0)
        env.run()
        assert resource.in_use == 0
        assert resource.queue_length == 0

    def test_reset_stats_while_busy_restarts_the_busy_window(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def holder(env):
            req = resource.request()
            yield req
            yield env.timeout(10)
            resource.release(req)

        env.process(holder(env))
        env.run(until=6.0)
        resource.reset_stats()
        env.run()
        # Only the post-reset busy time (t=6..10) counts.
        assert resource.utilization(elapsed=4.0) == pytest.approx(1.0)


class TestStoreViews:
    def test_store_items_view_and_remove_predicate(self):
        env = Environment()
        store = Store(env)
        for item in ("a", "bb", "c"):
            store.put(item)
        assert store.items == ("a", "bb", "c")
        removed = store.remove(lambda item: len(item) == 2)
        assert removed == ["bb"]
        assert store.items == ("a", "c")
        assert len(store) == 2

    def test_priority_store_items_sorted_and_peek_empty_raises(self):
        env = Environment()
        store = PriorityStore(env)
        for item in (3, 1, 2):
            store.put(item)
        assert store.items == (1, 2, 3)
        assert store.get().value == 1
        with pytest.raises(SimError):
            PriorityStore(env).peek()
