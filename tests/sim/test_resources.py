"""Tests for Resource, Store, PriorityStore, and Gate."""

import pytest

from repro.sim import Environment, PriorityStore, Resource, SimError, Store, Gate


def run_procs(env, *generators):
    for generator in generators:
        env.process(generator)
    env.run()


class TestResource:
    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grants_immediately_when_free(self):
        env = Environment()
        cpu = Resource(env)
        log = []

        def user(env):
            req = cpu.request()
            yield req
            log.append(env.now)
            cpu.release(req)

        run_procs(env, user(env))
        assert log == [0.0]

    def test_fifo_queueing(self):
        env = Environment()
        cpu = Resource(env)
        order = []

        def user(env, tag, hold):
            req = cpu.request()
            yield req
            order.append(tag)
            yield env.timeout(hold)
            cpu.release(req)

        env.process(user(env, "a", 2))
        env.process(user(env, "b", 2))
        env.process(user(env, "c", 2))
        env.run()
        assert order == ["a", "b", "c"]

    def test_priority_jumps_queue(self):
        env = Environment()
        cpu = Resource(env)
        order = []

        def holder(env):
            req = cpu.request()
            yield req
            yield env.timeout(5)
            cpu.release(req)

        def user(env, tag, priority, delay):
            yield env.timeout(delay)
            req = cpu.request(priority=priority)
            yield req
            order.append(tag)
            cpu.release(req)

        env.process(holder(env))
        env.process(user(env, "low", 10, 1))
        env.process(user(env, "high", 0, 2))
        env.run()
        assert order == ["high", "low"]

    def test_capacity_two_runs_pair_concurrently(self):
        env = Environment()
        pool = Resource(env, capacity=2)
        finish = []

        def user(env, tag):
            req = pool.request()
            yield req
            yield env.timeout(10)
            pool.release(req)
            finish.append((tag, env.now))

        for tag in ("a", "b", "c"):
            env.process(user(env, tag))
        env.run()
        assert finish == [("a", 10.0), ("b", 10.0), ("c", 20.0)]

    def test_release_foreign_request_rejected(self):
        env = Environment()
        one, two = Resource(env), Resource(env)
        req = one.request()
        with pytest.raises(SimError):
            two.release(req)

    def test_utilization_tracks_busy_time(self):
        env = Environment()
        cpu = Resource(env)

        def user(env):
            req = cpu.request()
            yield req
            yield env.timeout(4)
            cpu.release(req)
            yield env.timeout(6)

        env.process(user(env))
        env.run()
        assert cpu.utilization() == pytest.approx(0.4)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("x")
        got = []

        def getter(env):
            item = yield store.get()
            got.append(item)

        run_procs(env, getter(env))
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter(env):
            item = yield store.get()
            got.append((env.now, item))

        def putter(env):
            yield env.timeout(5)
            store.put("late")

        run_procs(env, getter(env), putter(env))
        assert got == [(5.0, "late")]

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        for item in (1, 2, 3):
            store.put(item)
        got = []

        def getter(env):
            for _ in range(3):
                got.append((yield store.get()))

        run_procs(env, getter(env))
        assert got == [1, 2, 3]

    def test_remove_predicate(self):
        env = Environment()
        store = Store(env)
        for item in range(6):
            store.put(item)
        removed = store.remove(lambda item: item % 2 == 0)
        assert removed == [0, 2, 4]
        assert list(store.items) == [1, 3, 5]


class TestPriorityStore:
    def test_orders_by_item(self):
        env = Environment()
        store = PriorityStore(env)
        store.put((3, 0, "c"))
        store.put((1, 1, "a"))
        store.put((2, 2, "b"))
        got = []

        def getter(env):
            for _ in range(3):
                item = yield store.get()
                got.append(item[2])

        run_procs(env, getter(env))
        assert got == ["a", "b", "c"]

    def test_peek_smallest(self):
        env = Environment()
        store = PriorityStore(env)
        store.put((5, 0, "x"))
        store.put((2, 1, "y"))
        assert store.peek()[2] == "y"

    def test_peek_empty_is_error(self):
        env = Environment()
        with pytest.raises(SimError):
            PriorityStore(env).peek()


class TestGate:
    def test_open_wakes_all_waiters(self):
        env = Environment()
        gate = Gate(env)
        woken = []

        def waiter(env, tag):
            yield gate.wait()
            woken.append((tag, env.now))

        def opener(env):
            yield env.timeout(3)
            gate.open()

        env.process(waiter(env, "a"))
        env.process(waiter(env, "b"))
        env.process(opener(env))
        env.run()
        assert woken == [("a", 3.0), ("b", 3.0)]

    def test_gate_rearms_after_open(self):
        env = Environment()
        gate = Gate(env)
        woken = []

        def waiter(env):
            yield gate.wait()
            woken.append(env.now)
            yield gate.wait()
            woken.append(env.now)

        def opener(env):
            yield env.timeout(1)
            gate.open()
            yield env.timeout(1)
            gate.open()

        env.process(waiter(env))
        env.process(opener(env))
        env.run()
        assert woken == [1.0, 2.0]

    def test_open_returns_waiter_count(self):
        env = Environment()
        gate = Gate(env)
        gate.wait()
        gate.wait()
        assert gate.open() == 2
        assert gate.open() == 0
