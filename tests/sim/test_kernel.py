"""Unit tests for the discrete-event kernel: events, processes, run loop."""

import pytest

from repro.sim import (
    Environment,
    EventLifecycleError,
    Interrupt,
    SimError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    observed = []

    def proc(env):
        yield env.timeout(3.5)
        observed.append(env.now)

    env.process(proc(env))
    env.run()
    assert observed == [3.5]


def test_timeouts_fire_in_time_order():
    env = Environment()
    order = []

    def sleeper(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(sleeper(env, 5, "c"))
    env.process(sleeper(env, 1, "a"))
    env.process(sleeper(env, 3, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_ties_break_in_creation_order():
    env = Environment()
    order = []

    def sleeper(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("first", "second", "third"):
        env.process(sleeper(env, tag))
    env.run()
    assert order == ["first", "second", "third"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def ticker(env):
        while True:
            yield env.timeout(1)

    env.process(ticker(env))
    env.run(until=10.5)
    assert env.now == 10.5


def test_run_until_event_returns_value():
    env = Environment()

    def producer(env, done):
        yield env.timeout(2)
        done.succeed("payload")

    done = env.event()
    env.process(producer(env, done))
    assert env.run(until=done) == "payload"
    assert env.now == 2


def test_run_until_past_time_rejected():
    env = Environment(initial_time=10)
    with pytest.raises(ValueError):
        env.run(until=5)


def test_process_return_value_propagates():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        return 42

    def parent(env, results):
        value = yield env.process(child(env))
        results.append(value)

    results = []
    env.process(parent(env, results))
    env.run()
    assert results == [42]


def test_waiting_on_finished_process_resumes_immediately():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        return "done"

    def parent(env, results):
        proc = env.process(child(env))
        yield env.timeout(5)
        assert not proc.is_alive
        value = yield proc
        results.append((env.now, value))

    results = []
    env.process(parent(env, results))
    env.run()
    assert results == [(5.0, "done")]


def test_event_succeed_twice_is_error():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(EventLifecycleError):
        event.succeed(2)


def test_event_fail_delivers_exception_to_waiter():
    env = Environment()

    class Boom(Exception):
        pass

    def failer(env, event):
        yield env.timeout(1)
        event.fail(Boom("bad"))

    def waiter(env, event, caught):
        try:
            yield event
        except Boom as exc:
            caught.append(str(exc))

    event = env.event()
    caught = []
    env.process(failer(env, event))
    env.process(waiter(env, event, caught))
    env.run()
    assert caught == ["bad"]


def test_unhandled_failed_event_crashes_run():
    env = Environment()

    class Boom(Exception):
        pass

    event = env.event()
    event.fail(Boom())
    with pytest.raises(Boom):
        env.run()


def test_process_exception_propagates_to_parent():
    env = Environment()

    class Boom(Exception):
        pass

    def child(env):
        yield env.timeout(1)
        raise Boom()

    def parent(env, caught):
        try:
            yield env.process(child(env))
        except Boom:
            caught.append(True)

    caught = []
    env.process(parent(env, caught))
    env.run()
    assert caught == [True]


def test_interrupt_wakes_sleeping_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
            log.append("overslept")
        except Interrupt as interrupt:
            log.append(("interrupted", env.now, interrupt.cause))

    def interrupter(env, victim):
        yield env.timeout(3)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [("interrupted", 3.0, "wake up")]


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(SimError):
        proc.interrupt()


def test_yield_non_event_is_error():
    env = Environment()

    def bad(env):
        yield 42

    proc = env.process(bad(env))
    with pytest.raises(SimError):
        env.run(until=proc)


def test_any_of_fires_on_first():
    env = Environment()
    results = []

    def waiter(env):
        t_fast = env.timeout(1, value="fast")
        t_slow = env.timeout(10, value="slow")
        fired = yield env.any_of([t_fast, t_slow])
        results.append((env.now, list(fired.values())))

    env.process(waiter(env))
    env.run()
    assert results == [(1.0, ["fast"])]


def test_all_of_waits_for_every_event():
    env = Environment()
    results = []

    def waiter(env):
        events = [env.timeout(d) for d in (3, 1, 2)]
        yield env.all_of(events)
        results.append(env.now)

    env.process(waiter(env))
    env.run()
    assert results == [3.0]


def test_stop_simulation_from_callback():
    env = Environment()

    def stopper(env):
        yield env.timeout(4)
        env.stop("halted")

    env.process(stopper(env))
    assert env.run() == "halted"
    assert env.now == 4


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7.0
    env2 = Environment()
    assert env2.peek() == float("inf")


def test_step_on_empty_queue_is_error():
    env = Environment()
    with pytest.raises(SimError):
        env.step()


def test_deterministic_two_identical_runs():
    def build_and_run():
        env = Environment()
        trace = []

        def worker(env, tag, delays):
            for delay in delays:
                yield env.timeout(delay)
                trace.append((env.now, tag))

        env.process(worker(env, "a", [1, 2, 3]))
        env.process(worker(env, "b", [2, 2, 2]))
        env.run()
        return trace

    assert build_and_run() == build_and_run()
