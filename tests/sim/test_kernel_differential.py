"""Differential test: the optimized kernel vs the naive reference.

The same seeded random scenario — a tangle of sleeping, signalling,
spawning, and waiting processes built only from the API surface the two
kernels share — runs on ``repro.sim.Environment`` and on the ~60-line
sorted-list interpreter in ``reference_kernel.py``.  Every observable
must match at every seed: the step-by-step execution log (who resumed,
when, with what value), process completion order and return values, the
final clock, and the number of events processed.
"""

import random

import pytest

from repro.sim import Environment

from tests.sim.reference_kernel import RefEnvironment

SEEDS = range(25)


def build_scenario(env, seed: int, log: list) -> list:
    """Spawn the same random process graph on either kernel.

    Uses only the common surface: ``timeout``/``event``/``process``,
    ``succeed``, ``triggered``, and waiting on processes.  Returns the
    top-level processes so completions can be compared.
    """
    rng = random.Random(seed)
    shared = [env.event() for _ in range(rng.randint(1, 3))]
    top = []

    def chore(name, stream):
        total = 0.0
        for step in range(stream.randint(1, 5)):
            roll = stream.random()
            if roll < 0.5:
                delay = round(stream.uniform(0.0, 6.0), 3)
                value = yield env.timeout(delay, value=delay)
                total += value
                log.append((name, step, "slept", env.now, value))
            elif roll < 0.65:
                event = shared[stream.randrange(len(shared))]
                if not event.triggered:
                    event.succeed(value=f"{name}/{step}")
                    log.append((name, step, "signalled", env.now))
                yield env.timeout(round(stream.uniform(0.0, 1.0), 3))
            elif roll < 0.8:
                event = shared[stream.randrange(len(shared))]
                if event.triggered:
                    value = yield event  # often already processed: the
                    # wait-on-finished immediate-resume path on both sides
                    log.append((name, step, "observed", env.now, value))
                else:
                    yield env.timeout(round(stream.uniform(0.0, 2.0), 3))
                    log.append((name, step, "paused", env.now))
            else:
                child = env.process(child_chore(f"{name}.c{step}", stream))
                value = yield child
                log.append((name, step, "joined", env.now, value))
        return (name, round(total, 3))

    def child_chore(name, stream):
        yield env.timeout(round(stream.uniform(0.0, 3.0), 3))
        log.append((name, "child-done", env.now))
        return name

    for index in range(rng.randint(2, 7)):
        stream = random.Random(rng.getrandbits(64))
        process = env.process(chore(f"p{index}", stream), name=f"p{index}")
        process.callbacks.append(
            lambda event, index=index: log.append(("complete", index, env.now))
        )
        top.append(process)

    # Late same-timestamp timeouts stress FIFO agreement too.
    tie = round(rng.uniform(0.0, 4.0), 3)
    for extra in range(rng.randint(0, 4)):
        timeout = env.timeout(tie, value=extra)
        timeout.callbacks.append(
            lambda event, extra=extra: log.append(("tie", extra, env.now))
        )
    return top


def run_on(env_class, seed: int):
    env = env_class()
    log: list = []
    top = build_scenario(env, seed, log)
    env.run()
    completions = [
        (process.value if process.processed else None) for process in top
    ]
    return {
        "log": log,
        "completions": completions,
        "now": env.now,
        "events_processed": env.events_processed,
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_kernels_agree(seed):
    fast = run_on(Environment, seed)
    reference = run_on(RefEnvironment, seed)
    assert fast["log"] == reference["log"], f"execution logs diverge (seed {seed})"
    assert fast["completions"] == reference["completions"]
    assert fast["now"] == reference["now"]
    assert fast["events_processed"] == reference["events_processed"]
    assert fast["events_processed"] > 0


def test_reference_kernel_orders_ties_fifo():
    """Sanity-check the reference itself before trusting the diff."""
    env = RefEnvironment()
    order = []
    for index in range(5):
        timeout = env.timeout(1.0)
        timeout.callbacks.append(lambda event, index=index: order.append(index))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_reference_kernel_run_until_time():
    env = RefEnvironment()

    def ticker(env):
        while True:
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run(until=5.5)
    assert env.now == 5.5
