"""Differential tests: every kernel backend vs the naive reference.

The seeded programs in ``tests/sim/harness.py`` — random process
tangles and queue-stress event programs built only from the API surface
the kernels share — replay on ``repro.sim.Environment`` under every
event-queue backend and on the ~60-line sorted-list interpreter in
``reference_kernel.py``.  Every observable must match at every seed:
the step-by-step execution log (who resumed, when, with what value),
process completion order and return values, the final clock, the number
of events processed, and the pending count at the deadline.

The extended kernel surface (interrupts, URGENT delivery) is beyond the
reference interpreter, so those programs replay two-way: every
alternative backend against the heap default.
"""

from bisect import insort

import pytest

from repro.sim import Environment, SimError, SimSpec, register_event_queue

from tests.sim.harness import (
    BACKEND_NAMES,
    EVENT_PROGRAM_HORIZON,
    build_event_program,
    make_env,
    observation_digest,
    replay_random_graph,
    run_on,
)
from tests.sim.reference_kernel import RefEnvironment

SEEDS = range(25)


@pytest.mark.parametrize("seed", SEEDS)
def test_kernels_agree(seed):
    """The default kernel vs the reference on the process-tangle programs."""
    fast = run_on(Environment, seed)
    reference = run_on(RefEnvironment, seed)
    assert fast["log"] == reference["log"], f"execution logs diverge (seed {seed})"
    assert fast == reference
    assert fast["events_processed"] > 0


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("seed", range(12))
def test_backend_matrix_agrees_with_reference(seed, backend):
    """Every backend (heap, calendar at every width) vs the reference."""
    observed = run_on(lambda: make_env(backend), seed)
    reference = run_on(RefEnvironment, seed)
    assert observed == reference, f"seed {seed} diverges on {backend}"
    assert observation_digest(observed) == observation_digest(reference)


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("seed", range(12))
def test_event_programs_three_way(seed, backend):
    """Queue-stress programs: ties, zero-delay cascades, far-future.

    Replayed to a fixed deadline so the far-future events stay pending:
    the backends must also agree on what *didn't* run.
    """
    observed = run_on(
        lambda: make_env(backend),
        seed,
        build=build_event_program,
        until=EVENT_PROGRAM_HORIZON,
    )
    reference = run_on(
        RefEnvironment, seed, build=build_event_program, until=EVENT_PROGRAM_HORIZON
    )
    assert observed == reference, f"seed {seed} diverges on {backend}"
    assert observed["now"] == EVENT_PROGRAM_HORIZON
    assert observed["pending"] > 0 or observed["events_processed"] > 0


@pytest.mark.parametrize("backend", [b for b in BACKEND_NAMES if b != "heap"])
@pytest.mark.parametrize("seed", range(15))
def test_extended_surface_matches_heap(seed, backend):
    """Interrupt/URGENT-heavy programs: alternative backends vs heap."""
    assert replay_random_graph(backend, seed) == replay_random_graph("heap", seed), (
        f"seed {seed} diverges on {backend}"
    )


class SortedListQueue:
    """A third-party backend: only the EventQueue contract, nothing the
    kernel could special-case — exercises the generic drain loop."""

    def __init__(self):
        self.items = []

    def push(self, item):
        insort(self.items, item)

    def pop(self):
        if not self.items:
            raise IndexError("pop from an empty event queue")
        return self.items.pop(0)

    def peek_time(self):
        return self.items[0][0] if self.items else float("inf")

    def __len__(self):
        return len(self.items)


def test_third_party_backend_through_registry_matches_reference():
    """An unknown queue type runs through the interface-only drain and
    must still be bit-identical — the seam's contract for plugins."""
    register_event_queue("test-sortedlist", lambda spec: SortedListQueue())
    spec = SimSpec(event_queue="test-sortedlist")
    for seed in range(6):
        observed = run_on(lambda: Environment(queue=spec.build_queue()), seed)
        reference = run_on(RefEnvironment, seed)
        assert observed == reference, f"seed {seed} diverges on sortedlist"


def test_third_party_backend_run_modes():
    register_event_queue("test-sortedlist", lambda spec: SortedListQueue())
    spec = SimSpec(event_queue="test-sortedlist")

    def ticker(env):
        while True:
            yield env.timeout(1.0)

    env = Environment(queue=spec.build_queue())
    env.process(ticker(env))
    env.run(until=3.5)
    assert env.now == 3.5
    done = env.timeout(2.0, value="fired")
    assert env.run(until=done) == "fired"

    def stopper(env):
        yield env.timeout(1.0)
        env.stop("halted")

    env = Environment(queue=spec.build_queue())
    env.process(stopper(env))
    assert env.run() == "halted"

    env = Environment(queue=spec.build_queue())
    with pytest.raises(SimError):
        env.run(until=env.event())  # queue drains before it ever fires


def test_reference_kernel_orders_ties_fifo():
    """Sanity-check the reference itself before trusting the diff."""
    env = RefEnvironment()
    order = []
    for index in range(5):
        timeout = env.timeout(1.0)
        timeout.callbacks.append(lambda event, index=index: order.append(index))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_reference_kernel_run_until_time():
    env = RefEnvironment()

    def ticker(env):
        while True:
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run(until=5.5)
    assert env.now == 5.5
