"""Isolation property tests for ``CalendarEventQueue``.

The differential suites pin the calendar backend bit-identical to the
heap through the whole kernel; these tests hit the queue *directly*
with adversarial push/pop interleavings — no Environment, no processes
— so a violation points straight at the data structure.  Each
randomized case runs against the trivially correct model (a sorted
list) across bucket widths including the degenerate single-bucket case
and all-same-timestamp storms, plus targeted cases for resize-crossing
FIFO ties, cancel-while-bucketed, and infinite timestamps.
"""

import random

import pytest

from repro.sim import CalendarEventQueue, Environment, Interrupt, SimSpec

#: Width grid for the randomized model tests: adaptive, much finer than
#: typical gaps, comparable, much coarser, and one-bucket-degenerate.
WIDTHS = (0.0, 0.001, 0.25, 30.0, 1e12)


def random_ops(rng, count: int, same_time: bool = False):
    """A kernel-shaped op sequence: pushes never precede the clock."""
    ops = []
    now = 0.0
    seq = 0
    pending = 0
    for _ in range(count):
        if pending and rng.random() < 0.4:
            ops.append(("pop",))
            pending -= 1
        else:
            seq += 1
            if same_time:
                when = 5.0
            else:
                roll = rng.random()
                if roll < 0.15:
                    when = now  # zero-delay
                elif roll < 0.25:
                    when = round(now + 1e6 * rng.random(), 3)  # far-future
                else:
                    when = round(now + rng.random() * 10.0, 3)
            priority = 0 if rng.random() < 0.1 else 1
            ops.append(("push", (when, priority, seq, None)))
            pending += 1
    return ops


def replay(queue, ops):
    """Drive *queue* through *ops*, tracking the clock like the kernel."""
    popped = []
    for op in ops:
        if op[0] == "push":
            queue.push(op[1])
        else:
            popped.append(queue.pop())
    # Drain the rest.
    while queue:
        popped.append(queue.pop())
    return popped


class ModelQueue:
    """The obviously correct model: a list re-sorted on every pop."""

    def __init__(self):
        self.items = []

    def push(self, item):
        self.items.append(item)

    def pop(self):
        self.items.sort()
        return self.items.pop(0)

    def __bool__(self):
        return bool(self.items)


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("seed", range(10))
def test_random_interleavings_match_model(seed, width):
    rng = random.Random(seed)
    ops = random_ops(rng, 300)
    assert replay(CalendarEventQueue(width), list(ops)) == replay(
        ModelQueue(), list(ops)
    ), f"seed {seed}, width {width}"


@pytest.mark.parametrize("width", WIDTHS)
def test_all_same_timestamp_is_fifo(width):
    rng = random.Random(99)
    ops = random_ops(rng, 200, same_time=True)
    assert replay(CalendarEventQueue(width), list(ops)) == replay(
        ModelQueue(), list(ops)
    )
    # Push-everything-then-drain: with one timestamp the order reduces
    # to (priority, seq) — URGENT first, FIFO within each class.
    queue = CalendarEventQueue(width)
    items = [op[1] for op in ops if op[0] == "push"]
    for item in items:
        queue.push(item)
    assert [queue.pop() for _ in range(len(items))] == sorted(items)


@pytest.mark.parametrize("seed", range(10))
def test_adaptive_resize_matches_model_and_is_deterministic(seed):
    rng = random.Random(seed)
    ops = random_ops(rng, 400)
    # Tiny knobs so several resizes actually trigger inside 400 ops.
    make = lambda: CalendarEventQueue(0.0, target_occupancy=4, resize_interval=8)
    first = replay(make(), list(ops))
    assert first == replay(ModelQueue(), list(ops))
    second = replay(make(), list(ops))
    assert first == second  # resize decisions are pure functions of the ops


def test_fifo_ties_survive_a_resize():
    """Same-timestamp runs must stay in seq order when the width moves."""
    queue = CalendarEventQueue(0.0, target_occupancy=2, resize_interval=2)
    # Bursts at identical timestamps, interleaved with spread to force
    # occupancy estimates (and therefore redistribution) in between.
    items = []
    seq = 0
    for stamp in (1.0, 1.0, 5.0, 5.0, 5.0, 9.0, 9.0, 13.0, 13.0, 13.0):
        seq += 1
        items.append((stamp, 1, seq, None))
    for item in items:
        queue.push(item)
    drained = []
    while queue:
        drained.append(queue.pop())
    assert drained == sorted(items)


def test_far_future_and_infinity_parking():
    queue = CalendarEventQueue(1.0)
    inf = float("inf")
    queue.push((inf, 1, 1, "end-a"))
    queue.push((2.0, 1, 2, "soon"))
    queue.push((inf, 1, 3, "end-b"))
    queue.push((1e15, 1, 4, "far"))
    assert len(queue) == 4
    assert queue.peek_time() == 2.0
    assert [queue.pop()[3] for _ in range(4)] == ["soon", "far", "end-a", "end-b"]
    assert not queue
    with pytest.raises(IndexError):
        queue.pop()


def test_peek_time_tracks_head_across_structures():
    queue = CalendarEventQueue(1.0)
    assert queue.peek_time() == float("inf")
    queue.push((7.5, 1, 1, None))
    assert queue.peek_time() == 7.5
    queue.push((3.25, 1, 2, None))
    assert queue.peek_time() == 3.25
    assert queue.pop()[0] == 3.25
    # 7.5's slot is now active; a push behind it lands in _extra and
    # must still win peek/pop.
    queue.push((7.25, 0, 3, None))
    assert queue.peek_time() == 7.25
    assert queue.pop()[0] == 7.25
    assert queue.pop()[0] == 7.5


def test_len_counts_every_structure():
    queue = CalendarEventQueue(1.0)
    queue.push((float("inf"), 1, 1, None))  # _far
    queue.push((5.0, 1, 2, None))  # bucket
    queue.push((6.0, 1, 3, None))  # another bucket
    assert len(queue) == 3
    queue.pop()  # activates 5.0's bucket
    queue.push((5.2, 1, 4, None))  # lands in _extra (at/behind active slot)
    assert len(queue) == 3
    assert bool(queue)


def test_cancel_while_bucketed():
    """Interrupting a process parked on a far-future bucketed timeout.

    The URGENT interrupt delivery lands at ``now`` — at/behind the
    active slot — while the original timeout stays bucketed far ahead;
    the kernel must resume the victim immediately and the stale timeout
    must still pop (as a no-op) in order.
    """
    env = Environment(queue=SimSpec(event_queue="calendar").build_queue())
    log = []

    def victim(env):
        try:
            yield env.timeout(1e6)
            log.append("slept-forever")
        except Interrupt as interrupt:
            log.append(("cancelled", env.now, interrupt.cause))

    def canceller(env, target):
        yield env.timeout(3.0)
        target.interrupt(cause="too-slow")

    target = env.process(victim(env))
    env.process(canceller(env, target))
    env.run()
    assert log == [("cancelled", 3.0, "too-slow")]
    assert target.processed and target.ok
    # The orphaned far-future timeout still drains through the queue.
    assert env.now >= 1e6


def test_constructor_rejects_bad_widths():
    for bad in (-1.0, float("inf"), float("nan")):
        with pytest.raises(ValueError):
            CalendarEventQueue(bad)
    for bad in (-0.5, float("inf"), float("nan")):
        with pytest.raises(ValueError):
            SimSpec(event_queue="calendar", bucket_width_s=bad)
    with pytest.raises(ValueError):
        SimSpec(event_queue="no-such-backend")
