"""Golden-digest identity: optimized kernel ≡ pre-optimization kernel.

The digests below were recorded on the commit *before* the kernel hot
path was optimized (run-loop inlining, ``__slots__``, inlined heap
pushes, lazy condition values).  A mid-size ``SpiffiSystem`` run must
reproduce them bit-for-bit — including ``events_processed``, so the
optimized kernel is not even allowed to schedule a different number of
events — under both the serial executor (``--jobs 1``) and the process
pool (``--jobs 4``), and under **every** registered event-queue backend:
the queue seam swaps the scheduling data structure, never the schedule.

If an intentional simulation-behaviour change lands later, re-record
with::

    PYTHONPATH=src python -c "import tests.sim.test_golden_digest as g; g.print_current()"
"""

import hashlib
import json

import pytest

from repro import MB, SpiffiConfig
from repro.experiments.results import config_digest
from repro.experiments.runner import (
    ProcessExecutor,
    Runner,
    RunRequest,
    SerialExecutor,
)
from repro.sim import SimSpec, event_queue_names

#: sha256 of the sorted-JSON ``RunMetrics.deterministic_dict()`` of
#: ``midsize_config()``, recorded pre-optimization.
GOLDEN_METRICS_DIGEST = (
    "2db6b504668e183fc6658df5c46dbee2298d933cc2d98bd3d11ea434cea7d2bb"
)

#: Config digest pinning the exact simulated scenario (any change to
#: the config schema or defaults shows up here, not as a silent drift
#: of the metrics digest).
GOLDEN_CONFIG_DIGEST = (
    "1dcbc090e33dd57f85cf649e3cb87640e29b2822741540ca4a0455e54ccc01c4"
)

#: Recorded pre-optimization; equality is also asserted via the metrics
#: digest, but pinning it separately makes a drift diagnosable at a
#: glance ("the kernel did different work") without digest archaeology.
GOLDEN_EVENTS_PROCESSED = 46040


def midsize_config() -> SpiffiConfig:
    return SpiffiConfig(
        nodes=2,
        disks_per_node=2,
        terminals=32,
        videos_per_disk=2,
        video_length_s=600.0,
        server_memory_bytes=256 * MB,
        start_spread_s=4.0,
        warmup_grace_s=6.0,
        measure_s=60.0,
        seed=11,
    )


def metrics_digest(metrics) -> str:
    payload = json.dumps(metrics.deterministic_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def run_with(executor, config=None):
    runner = Runner(executor=executor, cache=None)
    try:
        outcome = runner.run_batch([RunRequest(config or midsize_config())])[0]
    finally:
        executor.close()
    assert not outcome.failed, outcome.error
    return outcome.metrics


def test_config_digest_pinned():
    assert config_digest(midsize_config()) == GOLDEN_CONFIG_DIGEST


@pytest.mark.parametrize("backend", event_queue_names())
def test_backend_choice_never_changes_the_config_digest(backend):
    """The event queue is pure mechanism: a cached run under one
    backend is valid for all, so the digest must not see the spec."""
    config = midsize_config().replace(sim=SimSpec(event_queue=backend))
    assert config_digest(config) == GOLDEN_CONFIG_DIGEST


@pytest.mark.parametrize("backend", event_queue_names())
def test_identity_jobs_1(backend):
    config = midsize_config().replace(sim=SimSpec(event_queue=backend))
    metrics = run_with(SerialExecutor(), config)
    assert metrics.events_processed == GOLDEN_EVENTS_PROCESSED
    assert metrics_digest(metrics) == GOLDEN_METRICS_DIGEST


@pytest.mark.parametrize("backend", event_queue_names())
def test_identity_jobs_4(backend):
    config = midsize_config().replace(sim=SimSpec(event_queue=backend))
    metrics = run_with(ProcessExecutor(jobs=4), config)
    assert metrics.events_processed == GOLDEN_EVENTS_PROCESSED
    assert metrics_digest(metrics) == GOLDEN_METRICS_DIGEST


def print_current() -> None:  # pragma: no cover - re-recording helper
    metrics = run_with(SerialExecutor())
    print("config digest: ", config_digest(midsize_config()))
    print("metrics digest:", metrics_digest(metrics))
    print("events:        ", metrics.events_processed)
