"""Regression tests for condition-event composition over processed events.

Before the fix, an event that was *processed-and-failed* before an
``AllOf`` was composed was silently ignored: ``AllOf.__init__`` did not
count it in ``_remaining``, so the condition could *succeed* with the
exception object as a value.  Both conditions must instead fail with the
constituent's exception, exactly as they do for post-composition
failures.
"""

import pytest

from repro.sim import Environment


class Boom(Exception):
    pass


def processed_failure(env: Environment) -> object:
    """An event that failed and was fully processed (handled) earlier."""
    event = env.event()
    event.fail(Boom("pre-existing failure"))
    event.defuse()
    env.run()
    assert event.processed and not event.ok
    return event


class TestAllOfProcessedFailure:
    def test_fails_instead_of_succeeding_with_exception_value(self):
        env = Environment()
        failed = processed_failure(env)
        condition = env.all_of([failed, env.timeout(1)])
        assert condition.triggered
        assert not condition.ok
        condition.defuse()
        env.run()
        assert isinstance(condition._value, Boom)

    def test_waiter_sees_the_exception(self):
        env = Environment()
        failed = processed_failure(env)
        caught = []

        def waiter(env):
            try:
                yield env.all_of([failed, env.timeout(1)])
            except Boom:
                caught.append(env.now)

        env.process(waiter(env))
        env.run()
        assert caught == [0.0]

    def test_only_processed_failures(self):
        """Every constituent already processed, one failed: still fails."""
        env = Environment()
        ok = env.timeout(1, value="fine")
        env.run()
        failed = processed_failure(env)
        condition = env.all_of([ok, failed])
        assert condition.triggered and not condition.ok

    def test_pending_failure_still_fails(self):
        """The original (working) post-composition path is unchanged."""
        env = Environment()
        caught = []

        def failer(env, event):
            yield env.timeout(2)
            event.fail(Boom("late"))

        def waiter(env, event):
            try:
                yield env.all_of([event, env.timeout(5)])
            except Boom:
                caught.append(env.now)

        event = env.event()
        env.process(failer(env, event))
        env.process(waiter(env, event))
        env.run()
        assert caught == [2.0]

    def test_all_processed_successes_still_succeed(self):
        env = Environment()
        first = env.timeout(1, value="a")
        second = env.timeout(2, value="b")
        env.run()
        condition = env.all_of([first, second])
        assert condition.triggered and condition.ok
        env.run()
        assert condition.value == {first: "a", second: "b"}


class TestAnyOfProcessedFailure:
    def test_fails_when_first_processed_event_failed(self):
        env = Environment()
        failed = processed_failure(env)
        caught = []

        def waiter(env):
            try:
                yield env.any_of([failed, env.timeout(10)])
            except Boom:
                caught.append(env.now)

        env.process(waiter(env))
        env.run()
        assert caught == [0.0]

    def test_fails_when_later_listed_event_failed(self):
        env = Environment()
        failed = processed_failure(env)
        caught = []

        def waiter(env):
            pending = env.event()  # never fires
            try:
                yield env.any_of([pending, failed])
            except Boom:
                caught.append(env.now)

        env.process(waiter(env))
        env.run()
        assert caught == [0.0]

    def test_processed_success_wins_over_processed_failure(self):
        """First-listed processed success fires the condition; the
        failure behind it never gets a vote (first-fired semantics)."""
        env = Environment()
        ok = env.timeout(1, value="fine")
        env.run()
        failed = processed_failure(env)
        condition = env.any_of([ok, failed])
        assert condition.triggered and condition.ok
        env.run()
        assert condition.value == {ok: "fine"}


class TestConditionValueLaziness:
    """The value dict is built on first access; semantics are pinned to
    the membership at trigger time, not at access time."""

    def test_any_of_value_excludes_events_fired_after_trigger(self):
        env = Environment()
        seen = {}

        def waiter(env):
            first = env.timeout(1, value="first")
            # Same timestamp, later insertion: processed after `first`
            # but before the condition's own callbacks run.
            second = env.timeout(1, value="second")
            result = yield env.any_of([first, second])
            seen["value"] = result

        env.process(waiter(env))
        env.run()
        assert list(seen["value"].values()) == ["first"]

    def test_value_is_cached(self):
        env = Environment()
        events = [env.timeout(1), env.timeout(2)]
        condition = env.all_of(events)
        env.run()
        assert condition.value is condition.value

    def test_run_until_condition_returns_dict(self):
        env = Environment()
        t1 = env.timeout(1, value="x")
        t2 = env.timeout(2, value="y")
        value = env.run(until=env.all_of([t1, t2]))
        assert value == {t1: "x", t2: "y"}

    def test_empty_conditions_have_eager_empty_dict(self):
        env = Environment()
        assert env.any_of([]).value == {}
        env2 = Environment()
        all_cond = env2.all_of([])
        assert all_cond.triggered
        env2.run()
        assert all_cond.value == {}


class TestSlots:
    """The kernel's per-event types must stay dict-free."""

    @pytest.mark.parametrize("maker", ["event", "timeout", "any_of", "all_of", "process"])
    def test_no_instance_dict(self, maker):
        env = Environment()
        if maker == "event":
            obj = env.event()
        elif maker == "timeout":
            obj = env.timeout(1)
        elif maker == "any_of":
            obj = env.any_of([env.timeout(1)])
        elif maker == "all_of":
            obj = env.all_of([env.timeout(1)])
        else:

            def proc(env):
                yield env.timeout(1)

            obj = env.process(proc(env))
        with pytest.raises(AttributeError):
            obj.arbitrary_attribute = 1
        env.run()
