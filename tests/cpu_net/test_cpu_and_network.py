"""Tests for the CPU and network models."""

import pytest

from repro.cpu import CpuParameters, InstructionCosts, Processor
from repro.netsim import NetworkBus, NetworkParameters
from repro.sim import Environment


class TestCpuParameters:
    def test_table1_costs(self):
        costs = InstructionCosts()
        assert costs.start_io == 20_000
        assert costs.send_message == 6_800
        assert costs.receive_message == 2_200

    def test_seconds_at_40_mips(self):
        params = CpuParameters()
        assert params.seconds(20_000) == pytest.approx(0.0005)
        assert params.seconds(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CpuParameters().seconds(-1)


class TestProcessor:
    def test_fcfs_serialises_bursts(self):
        env = Environment()
        cpu = Processor(env, CpuParameters(), 0)
        finished = []

        def worker(env, tag):
            yield from cpu.execute(40_000_000)  # 1 second at 40 MIPS
            finished.append((tag, env.now))

        env.process(worker(env, "a"))
        env.process(worker(env, "b"))
        env.run()
        assert finished == [("a", 1.0), ("b", 2.0)]

    def test_utilization(self):
        env = Environment()
        cpu = Processor(env, CpuParameters(), 0)

        def worker(env):
            yield from cpu.execute(40_000_000)
            yield env.timeout(3.0)

        env.process(worker(env))
        env.run()
        assert cpu.utilization() == pytest.approx(0.25)

    def test_reset_stats(self):
        env = Environment()
        cpu = Processor(env, CpuParameters(), 0)

        def worker(env):
            yield from cpu.execute(40_000_000)

        env.process(worker(env))
        env.run()
        cpu.reset_stats()
        assert cpu.utilization() == pytest.approx(0.0)


class TestNetwork:
    def test_table1_wire_delay(self):
        params = NetworkParameters()
        # 5 µs + 0.04 µs/byte: a 512 KB block ≈ 20.98 ms.
        assert params.transit_time(0) == pytest.approx(5e-6)
        assert params.transit_time(512 * 1024) == pytest.approx(
            5e-6 + 0.04e-6 * 512 * 1024
        )

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NetworkParameters().transit_time(-1)

    def test_transfer_advances_clock_and_counts_bytes(self):
        env = Environment()
        bus = NetworkBus(env, NetworkParameters())
        done = []

        def sender(env):
            yield from bus.transfer(1_000_000)
            done.append(env.now)

        env.process(sender(env))
        env.run()
        assert done[0] == pytest.approx(5e-6 + 0.04)
        assert bus.traffic.total == 1_000_000
        assert bus.messages == 1

    def test_unlimited_aggregate_bandwidth(self):
        """Two concurrent transfers do not queue behind each other."""
        env = Environment()
        bus = NetworkBus(env, NetworkParameters())
        done = []

        def sender(env, tag):
            yield from bus.transfer(1_000_000)
            done.append((tag, env.now))

        env.process(sender(env, "a"))
        env.process(sender(env, "b"))
        env.run()
        assert done[0][1] == pytest.approx(done[1][1])

    def test_peak_bandwidth_windows(self):
        env = Environment()
        bus = NetworkBus(env, NetworkParameters(rate_window_s=1.0))

        def sender(env):
            yield from bus.transfer(100)
            yield env.timeout(2.0)
            yield from bus.transfer(300)

        env.process(sender(env))
        env.run()
        assert bus.peak_bandwidth == pytest.approx(300.0)

    def test_reset_stats(self):
        env = Environment()
        bus = NetworkBus(env, NetworkParameters())

        def sender(env):
            yield from bus.transfer(100)

        env.process(sender(env))
        env.run()
        bus.reset_stats()
        assert bus.traffic.total == 0
        assert bus.messages == 0
